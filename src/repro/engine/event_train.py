"""Event-accelerated training: analytic jumps across quiescent spans.

The fused kernel (:mod:`repro.engine.fused`) removed allocation overhead
but stays dense clock-driven: every step pays a full ``(n_pixels,
n_neurons)`` matrix-vector product plus per-step timer arithmetic over all
neurons, whether or not anything happens.  This module exploits the
temporal sparsity of rate-coded input — the direction of the lazy/
event-driven plasticity work surveyed in PAPERS.md — in four ways:

**Sparse input events.**  The pre-generated raster (same ``generate_train``
draw as the fused path, so the ``encoding`` RNG stream is consumed
identically) is converted to per-step event column lists
(:func:`repro.encoding.events.sparsify`).  Injection at an event step
gathers and sums only the spiking rows of the conductance matrix — a few
row reads instead of a dense BLAS ``vec @ matrix``.

**Closed-form jumps.**  Between input events nothing external changes, so
the forward-Euler recurrence is affine with a geometrically decaying drive
and has a closed form.  With ``β = 1 + b·dt`` (membrane decay per step) and
``γ = exp(-dt/τ_I)`` (current decay per step), advancing ``m`` quiet steps
at once:

    ``v  ←  β^m v + a·dt·S + c·dt·(γ·I)·G  [- c·dt·I_inh·S on inhibited]``
    ``I  ←  γ^m I``        ``θ  ←  θ_d^m θ``
    ``S = (1 - β^m)/(1 - β)``      ``G = (β^m - γ^m)/(β - γ)``

(the per-neuron generalisation of the single-neuron analytic oracle in
:mod:`repro.engine.event_driven`).  The per-step reset clamp commutes with
the jump because the drive decays monotonically: once a membrane clamps it
stays clamped for the rest of the span, so one clamp at the end is exact.

**Jump bounding.**  A jump may not skip over an output spike.  Before each
jump a conservative threshold-crossing predictor bounds every membrane over
the span by ``max(v, v̂)`` with ``v̂ = (a + c·γ·I)/(-b)`` (the fixed point
of the first quiet step's drive, an upper bound because the drive only
decays) and compares against the lowest reachable threshold ``v_th +
min(θ)·θ_d^(m-1)`` minus a safety margin.  If any non-blocked neuron could
cross, the span is stepped densely (with exact per-step spike detection)
instead of jumped — no spike can be missed, at worst a jump is forgone.

**Lazy plasticity and timer state.**  ``last_pre`` is written only at event
steps (a sparse scatter over the few spiking channels, not a masked write
over all 784); refractory and WTA-inhibition timers are kept as integer
expiry *steps* (no per-step float decrement over the population — regime
masks are refreshed only when a timer is set or expires); ``θ`` decays in
one ``θ_d^m`` scalar power per jump.  Float timer state is synchronised
back into the network at the end of each presentation, so the engines stay
interchangeable between images.

Contract — **spike-trajectory equivalence**, not bit-identity: under pinned
seeds the engine must produce the same spike trains (hence identical
``learning``-stream consumption) and conductances within a documented
tolerance (:data:`CONDUCTANCE_ATOL`); the fused kernel remains the
bit-exact oracle.  The closed forms evaluate the same real-number
recurrence the dense loop iterates, so membrane deviations are at the
floating-point rearrangement level (``~1e-12`` relative); weight updates
depend only on spike times, timers and the ``learning`` stream, so in
practice conductances come out exactly equal whenever the spike trains
match.  ``tests/test_event_train.py`` pins both, and
``scripts/bench_training.py --check`` re-verifies equivalence in-harness.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.backend import backend_ops
from repro.encoding.events import sparsify
from repro.engine.plasticity import (
    deterministic_rule_columns,
    resolve_fast_rule,
    stochastic_rule_columns,
)
from repro.errors import ConfigurationError, SimulationError
from repro.learning.stochastic import LTDMode, StochasticSTDP
from repro.network.wta import WTANetwork

if TYPE_CHECKING:
    from repro.engine.profiler import StepProfiler

#: Absolute tolerance on learned conductances versus the fused/reference
#: path (the documented part of the spike-trajectory-equivalence contract).
#: In practice conductances match exactly when the spike trains match —
#: weight updates read spike timers and the ``learning`` stream, never the
#: analytically-advanced membrane state — so the tolerance only guards the
#: comparison against future value-equivalent refactors.
CONDUCTANCE_ATOL = 1e-9

#: Safety margin (mV) subtracted from the lowest reachable threshold in the
#: jump predictor.  Closed-form membranes deviate from dense stepping at the
#: ~1e-12 relative level (~1e-10 mV at the paper's operating point); any
#: membrane within the margin of threshold forces dense stepping, so the
#: margin trades a few forgone jumps for immunity to rearrangement error.
CROSSING_MARGIN = 1e-6


@dataclass
class EventTrainStats:
    """Occupancy and skipping counters accumulated across ``run`` calls."""

    steps_total: int = 0
    #: Steps advanced inside closed-form jumps (no per-step work at all).
    steps_skipped: int = 0
    #: Steps advanced explicitly (input events or predictor-flagged spans).
    steps_stepped: int = 0
    #: Number of closed-form jumps taken.
    jumps: int = 0
    #: Steps carrying at least one input event.
    input_event_steps: int = 0
    #: Steps on which at least one output spike fired.
    spike_steps: int = 0
    #: Raster cells = presentations * steps * channels; active = spiking.
    raster_cells: int = 0
    raster_active_cells: int = 0

    @property
    def skipped_fraction(self) -> float:
        """Fraction of all steps absorbed by closed-form jumps."""
        return self.steps_skipped / self.steps_total if self.steps_total else 0.0

    @property
    def raster_cell_occupancy(self) -> float:
        return self.raster_active_cells / self.raster_cells if self.raster_cells else 0.0

    @property
    def input_step_occupancy(self) -> float:
        return self.input_event_steps / self.steps_total if self.steps_total else 0.0


def _expiry_steps(duration_ms: float, dt_ms: float) -> int:
    """How many steps a timer of *duration_ms* keeps its neuron flagged.

    Mirrors the dense loop's ``left > 0`` test against per-step ``dt``
    decrements: a timer set to ``d`` stays positive for ``ceil(d/dt)``
    decrements (exact when ``d`` is a multiple of ``dt``, which the paper's
    1 ms grid always is; the epsilon guards against ``d/dt`` landing a ulp
    above an integer).
    """
    if duration_ms <= 0.0:
        return 0
    return int(math.ceil(duration_ms / dt_ms - 1e-12))


class EventPresentation:
    """Event-accelerated drop-in for :class:`~repro.engine.fused.FusedPresentation`.

    Construct once per training run and call :meth:`run` once per image.
    The kernel reads and mutates the live network state and consumes the
    ``encoding`` and ``learning`` RNG streams in the same order as the
    dense engines, so presentations can interleave with the reference and
    fused paths; see the module docstring for the equivalence contract.
    """

    def __init__(self, network: WTANetwork) -> None:
        self._ops = backend_ops()
        xp = self._ops.xp
        if network.config.lif.b >= 0.0:
            raise ConfigurationError(
                "event-accelerated stepping requires a leaky membrane (b < 0): "
                "the closed forms and the crossing predictor rely on a stable "
                f"fixed point, got b={network.config.lif.b}"
            )
        self.net = network
        cfg = network.config
        self._wta = cfg.wta
        self._lif = cfg.lif
        n = cfg.wta.n_neurons

        self._amplitude = network.amplitude
        self._conductance_model = cfg.wta.synapse_model == "conductance"
        self._scale_denom = cfg.wta.e_excitatory - cfg.lif.v_reset
        self._subtractive = network.neurons.inhibition_strength > 0.0

        self._fast_rule = resolve_fast_rule(network)
        # PAIR/BOTH-mode LTD consumes the learning stream at *pre*-spike
        # steps too, so the fallback rule must run at every input-event step.
        rule = network.rule
        self._pair_ltd = isinstance(rule, StochasticSTDP) and rule.ltd_mode in (
            LTDMode.PAIR,
            LTDMode.BOTH,
        )

        self.stats = EventTrainStats()

        # Preallocated work buffers on the kernel's backend.  ``_pre_mask``
        # stays host-resident: it is consumed only by the fallback reference
        # rule, a host subsystem.
        self._inj = xp.empty(n, dtype=np.float64)
        self._scale = xp.empty(n, dtype=np.float64)
        self._eff = xp.empty(n, dtype=np.float64)
        self._dv = xp.empty(n, dtype=np.float64)
        self._tmp = xp.empty(n, dtype=np.float64)
        self._thr = xp.empty(n, dtype=np.float64)
        self._blocked = xp.empty(n, dtype=bool)
        self._inh_mask = xp.empty(n, dtype=bool)
        self._spikes = xp.empty(n, dtype=bool)
        self._danger = xp.empty(n, dtype=bool)
        self._losers = xp.empty(n, dtype=bool)
        # Host-side: consumed by the host STDP scatter.
        self._pre_mask = np.empty(network.n_pixels, dtype=bool)  # lint-ok: R6
        self._ref_end = xp.zeros(n, dtype=np.int64)
        self._inh_end = xp.zeros(n, dtype=np.int64)
        self._inh_scratch = xp.empty(n, dtype=np.int64)

    # ------------------------------------------------------------------
    # kernel
    # ------------------------------------------------------------------

    def run(
        self,
        image: np.ndarray,
        t_ms: float,
        n_steps: int,
        dt_ms: float,
        profiler: Optional[StepProfiler] = None,
        out_counts: Optional[np.ndarray] = None,
    ) -> Tuple[int, float]:
        """Present *image* for *n_steps* steps of *dt_ms*, starting at *t_ms*.

        Returns ``(total_output_spikes, t_ms_after)`` — the same protocol as
        :meth:`FusedPresentation.run`.  Spike times handed to the STDP
        timers come from the same repeated ``+ dt_ms`` float accumulation
        the dense loops perform, so timer contents match exactly.

        *profiler* (a :class:`~repro.engine.profiler.StepProfiler`) splits
        the presentation into encode / integrate / stdp / wta sections.

        *out_counts* (int64, length ``n_neurons``) accumulates each
        neuron's post-arbitration spike count; jumps cannot skip an output
        spike, so counting only at explicit steps is exhaustive.
        """
        if n_steps < 0:
            raise SimulationError(f"n_steps must be >= 0, got {n_steps}")
        net = self.net
        lif = self._lif
        wta = self._wta
        clock = time.perf_counter

        beta = 1.0 + lif.b * dt_ms
        if not 0.0 < beta < 1.0:
            raise SimulationError(
                f"event-accelerated stepping needs a stable Euler step "
                f"(0 < 1 + b*dt < 1), got 1 + ({lif.b})*({dt_ms}) = {beta}"
            )

        if profiler is not None:
            _t0 = clock()
        net.present_image(image)
        raster = net.encoder.generate_train(n_steps, dt_ms, net.rngs.encoding)
        sparse = sparsify(raster)
        # The spike-time grid: the same float accumulation as the dense
        # loops, precomputed so jumps can land mid-presentation exactly.
        t_grid = np.empty(n_steps + 1, dtype=np.float64)  # host clock  # lint-ok: R6
        t_acc = t_ms
        for i in range(n_steps + 1):
            t_grid[i] = t_acc
            t_acc += dt_ms
        if profiler is not None:
            profiler.add("encode", clock() - _t0)

        neurons = net.neurons
        timers = net.timers
        has_decay = wta.current_tau_ms > 0.0
        gamma = net.current_decay(dt_ms) if has_decay else 0.0
        theta_decay = neurons.theta_decay(dt_ms)
        adapting = neurons.adaptation.enabled
        theta_plus = neurons.adaptation.theta_plus
        learning = net.learning_enabled
        inh_strength = neurons.inhibition_strength
        t_inh = wta.t_inh_ms
        single_winner = wta.single_winner
        ref_steps = _expiry_steps(lif.refractory_ms, dt_ms)
        # Inhibition is applied after the dense loop's timer decrement, so
        # it survives one step longer than its raw duration (see tests).
        inh_steps = _expiry_steps(t_inh, dt_ms) + 1
        a, b, c = lif.a, lif.b, lif.c
        v_reset, v_threshold = lif.v_reset, lif.v_threshold
        neg_b_inv = 1.0 / (-b)

        # State arrays: the network's live arrays on the host backend
        # (identity transfers), uploaded mirrors on a device backend with a
        # download at the end of the presentation.  The host conductance
        # matrix stays authoritative (STDP is a host subsystem); its device
        # copy is read-only between column resyncs.
        ops = self._ops
        on_host = ops.is_host
        g_host = net.synapses.g
        current = ops.to_device(net._current)
        v = ops.to_device(neurons._v)
        theta = ops.to_device(neurons._theta)
        g = ops.to_device(g_host)
        rule = net.rule
        rng_learning = net.rngs.learning
        fast_rule = self._fast_rule

        inj = self._inj
        scale = self._scale
        eff = self._eff
        dv = self._dv
        tmp = self._tmp
        thr = self._thr
        blocked = self._blocked
        inh_mask = self._inh_mask
        spikes = self._spikes
        danger = self._danger
        losers = self._losers
        ref_end = self._ref_end
        inh_end = self._inh_end

        # Import the float timers into integer expiry steps (step indices
        # relative to this presentation; ``end > j``  <=>  flagged at j).
        if on_host:
            np.ceil(neurons._refractory_left / dt_ms - 1e-12, out=tmp)
            np.maximum(tmp, 0.0, out=tmp)
            ref_end[:] = tmp.astype(np.int64)
            np.ceil(neurons._inhibited_left / dt_ms - 1e-12, out=tmp)
            np.maximum(tmp, 0.0, out=tmp)
            inh_end[:] = tmp.astype(np.int64)
        else:
            # The float timers are host state: convert on the host (same
            # arithmetic) and upload the integer result once.
            imported = np.ceil(neurons._refractory_left / dt_ms - 1e-12)
            np.maximum(imported, 0.0, out=imported)
            ref_end[:] = ops.to_device(imported.astype(np.int64))
            imported = np.ceil(neurons._inhibited_left / dt_ms - 1e-12)
            np.maximum(imported, 0.0, out=imported)
            inh_end[:] = ops.to_device(imported.astype(np.int64))

        big = n_steps + 1  # sentinel expiry beyond the presentation
        subtractive = self._subtractive
        conductance_model = self._conductance_model

        stats = self.stats
        stats.steps_total += n_steps
        stats.input_event_steps += int(sparse.event_steps.size)
        stats.raster_cells += n_steps * sparse.n_channels
        stats.raster_active_cells += sparse.n_events

        event_steps = sparse.event_steps
        n_events = event_steps.size
        offsets = sparse.offsets
        channels = sparse.channels
        empty_rows = channels[:0]

        total_spikes = 0
        evt_ptr = 0
        j = 0
        regimes_dirty = True
        next_expiry = 0
        blocked_any = False
        inh_any = False
        # Once the predictor flags a span, step it densely without
        # re-predicting every step; an output spike resets the flag (the
        # spiker is then refractory and thresholds moved, so a jump may
        # become safe again).
        no_jump_until = 0
        while j < n_steps:
            if regimes_dirty or j >= next_expiry:
                # Refresh regime masks; they stay valid until the earliest
                # pending expiry (or the next output spike sets new timers).
                np.greater(ref_end, j, out=blocked)
                np.greater(inh_end, j, out=inh_mask)
                if not subtractive:
                    np.logical_or(blocked, inh_mask, out=blocked)
                blocked_any = bool(blocked.any())
                inh_any = bool(inh_mask.any())
                nr = int(np.min(np.where(ref_end > j, ref_end, big)))
                ni = int(np.min(np.where(inh_end > j, inh_end, big)))
                next_expiry = min(nr, ni)
                regimes_dirty = False

            while evt_ptr < n_events and event_steps[evt_ptr] < j:
                evt_ptr += 1
            next_event = int(event_steps[evt_ptr]) if evt_ptr < n_events else n_steps

            if next_event > j and j >= no_jump_until:
                # --- quiescent span [j, seg_end): jump or step densely ---
                seg_end = min(next_event, next_expiry)
                m = seg_end - j
                if profiler is not None:
                    _t0 = clock()
                beta_m = beta**m
                # Conservative crossing predictor: bound every membrane over
                # the span by max(v, fixed point of the strongest drive) and
                # compare against the lowest reachable threshold.
                theta_floor = float(theta.min()) * (
                    theta_decay ** (m - 1) if adapting else 1.0
                )
                thr_floor = v_threshold + theta_floor - CROSSING_MARGIN
                np.multiply(current, c * gamma, out=tmp)
                tmp += a
                tmp *= neg_b_inv
                np.maximum(tmp, v, out=tmp)
                np.greater_equal(tmp, thr_floor, out=danger)
                if blocked_any:
                    danger[blocked] = False
                if not danger.any():
                    # --- closed-form jump over m steps --------------------
                    s_sum = (1.0 - beta_m) / (1.0 - beta)
                    v *= beta_m
                    v += a * dt_ms * s_sum
                    if has_decay:
                        gamma_m = gamma**m
                        if abs(beta - gamma) > 1e-12:
                            geom = (beta_m - gamma_m) / (beta - gamma)
                        else:
                            geom = m * beta ** (m - 1)
                        np.multiply(current, (c * dt_ms * gamma) * geom, out=tmp)
                        v += tmp
                        current *= gamma_m
                    else:
                        current.fill(0.0)
                    if subtractive and inh_any:
                        v[inh_mask] -= (inh_strength * c * dt_ms) * s_sum
                    if blocked_any:
                        v[blocked] = v_reset
                    np.maximum(v, v_reset, out=v)
                    if adapting:
                        theta *= theta_decay**m
                    stats.steps_skipped += m
                    stats.jumps += 1
                    j = seg_end
                    if profiler is not None:
                        profiler.add("integrate", clock() - _t0)
                    continue
                if profiler is not None:
                    profiler.add("integrate", clock() - _t0, calls=0)
                # A crossing is possible: fall through and step this span
                # densely, one step at a time, with exact spike detection.
                no_jump_until = seg_end
                rows = empty_rows
            elif next_event > j:
                rows = empty_rows
            else:
                rows = channels[offsets[j] : offsets[j + 1]]

            # --- one explicit step (input event or dangerous span) -------
            if profiler is not None:
                _t0 = clock()
            t_now = t_grid[j]
            k = rows.size
            if k:
                timers._last_pre[rows] = t_now
                if k == 1:
                    np.multiply(g[rows[0]], self._amplitude, out=inj)
                else:
                    np.sum(g[rows], axis=0, out=inj)
                    inj *= self._amplitude
                if conductance_model:
                    np.subtract(wta.e_excitatory, v, out=scale)
                    scale /= self._scale_denom
                    np.maximum(scale, 0.0, out=scale)
                    inj *= scale
                if has_decay:
                    current *= gamma
                    current += inj
                else:
                    np.copyto(current, inj)
            elif has_decay:
                current *= gamma
            else:
                current.fill(0.0)

            np.copyto(eff, current)
            if blocked_any:
                eff[blocked] = 0.0
            if subtractive and inh_any:
                eff[inh_mask] -= inh_strength

            np.multiply(v, b, out=dv)
            dv += a
            np.multiply(eff, c, out=tmp)
            dv += tmp
            dv *= dt_ms
            v += dv
            if blocked_any:
                v[blocked] = v_reset
            np.maximum(v, v_reset, out=v)

            np.add(theta, v_threshold, out=thr)
            np.greater_equal(v, thr, out=spikes)
            if blocked_any:
                spikes[blocked] = False
            n_fired = int(np.count_nonzero(spikes))
            if n_fired:
                v[spikes] = v_reset
                ref_end[spikes] = j + ref_steps

            if adapting:
                theta *= theta_decay
                if n_fired:
                    theta[spikes] += theta_plus
            if profiler is not None:
                _t1 = clock()
                profiler.add("integrate", _t1 - _t0, calls=0)

            if single_winner and n_fired > 1:
                contenders = np.flatnonzero(spikes)
                winner = contenders[np.argmax(current[contenders])]
                spikes.fill(False)
                spikes[winner] = True
                n_fired = 1
            if profiler is not None:
                _t2 = clock()
                profiler.add("wta", _t2 - _t1, calls=0)

            # STDP runs on the host (rules/quantisers are host subsystems):
            # on a device backend the spike mask is downloaded at the steps
            # that need it and the updated conductance columns re-uploaded.
            spikes_h = spikes if on_host else None
            if learning:
                if fast_rule is None:
                    # Fallback configs (stochastic rounding, pair-LTD): the
                    # reference rule only touches state / draws RNG at post
                    # spikes (plus pre events in the pair modes), so calling
                    # it exactly then keeps the learning stream identical.
                    if n_fired or (self._pair_ltd and k):
                        pre_mask = self._pre_mask
                        pre_mask.fill(False)
                        if k:
                            pre_mask[rows] = True
                        if spikes_h is None:
                            spikes_h = ops.to_host(spikes)
                        rule.step(
                            net.synapses, timers, pre_mask, spikes_h, t_now, rng_learning
                        )
                        if not on_host:
                            # The reference path may touch the whole matrix.
                            g = ops.to_device(g_host)
                elif n_fired:
                    if spikes_h is None:
                        spikes_h = ops.to_host(spikes)
                    if fast_rule == "stochastic":
                        stochastic_rule_columns(
                            rule, net.synapses, timers, spikes_h, t_now, rng_learning
                        )
                    else:
                        deterministic_rule_columns(
                            rule, net.synapses, timers, spikes_h, t_now, rng_learning
                        )
                    if not on_host:
                        cols = np.flatnonzero(spikes_h)
                        g[:, cols] = ops.to_device(g_host[:, cols])
            if n_fired:
                if spikes_h is None:
                    spikes_h = ops.to_host(spikes)
                timers._last_post[spikes_h] = t_now
                if out_counts is not None:
                    out_counts[spikes_h] += 1
            if profiler is not None:
                _t3 = clock()
                profiler.add("stdp", _t3 - _t2)

            if n_fired:
                if t_inh > 0.0:
                    np.logical_not(spikes, out=losers)
                    scratch = self._inh_scratch
                    np.multiply(losers, j + inh_steps, out=scratch)
                    np.maximum(inh_end, scratch, out=inh_end)
                regimes_dirty = True
                no_jump_until = 0
                stats.spike_steps += 1
            if profiler is not None:
                profiler.add("wta", clock() - _t3)

            total_spikes += n_fired
            stats.steps_stepped += 1
            j += 1

        # Export the integer timers back into the float state so the dense
        # engines (and `rest()`) see exactly what per-step decrements would
        # have left behind.  The float timers are host state, so a device
        # backend downloads the expiry steps first (same arithmetic after).
        ref_export = ref_end if on_host else ops.to_host(ref_end)
        inh_export = inh_end if on_host else ops.to_host(inh_end)
        np.subtract(ref_export, n_steps, out=ref_export)
        np.maximum(ref_export, 0, out=ref_export)
        np.multiply(ref_export, dt_ms, out=neurons._refractory_left, casting="unsafe")
        np.subtract(inh_export, n_steps, out=inh_export)
        np.maximum(inh_export, 0, out=inh_export)
        np.multiply(inh_export, dt_ms, out=neurons._inhibited_left, casting="unsafe")

        if not on_host:
            # Download the stepped state into the live host arrays so every
            # boundary consumer keeps seeing plain host floats.
            np.copyto(net._current, ops.to_host(current))
            np.copyto(neurons._v, ops.to_host(v))
            np.copyto(neurons._theta, ops.to_host(theta))

        return total_spikes, t_grid[n_steps]
