"""Graceful engine degradation: fall down the equivalence ladder, not over.

The engine registry orders the sequential training engines by how
aggressively they optimise the same semantics: ``event`` (sparse +
closed-form jumps) → ``fused`` (dense single-kernel) → ``reference`` (the
per-step oracle).  When a fast engine faults mid-run — a bug tickled by an
unusual input, an injected fault from the test harness — aborting an
hours-long training run is the worst available outcome: the *reference*
semantics are still perfectly computable.

:func:`next_tier` names each engine's fallback.  The trainer uses it
(``on_engine_fault="degrade"``) to roll the network back to the last
presentation-boundary snapshot, rebuild the next-tier engine and re-present
the image, emitting an :class:`EngineDegradedWarning` so the downgrade is
visible in logs.  Because ``fused`` is bit-identical to ``reference`` and
``event`` is spike-trajectory-equivalent, a degraded run stays inside the
published equivalence contract of the tier it lands on.
"""

from __future__ import annotations

from typing import List, Optional

#: Fallback order of the sequential training engines (most to least
#: optimised).  ``reference`` has no fallback: a fault there is a real
#: error and propagates.  The integer tiers degrade within their own
#: ladder first — ``qevent`` (sparse + jumps on codes) falls back to the
#: dense ``qfused`` kernel, which falls back to ``fused`` (the same
#: Q-format *simulated* on float64, valid for any quantization config).
DEGRADATION_CHAIN = {
    "qevent": "qfused",
    "qfused": "fused",
    "event": "fused",
    "fused": "reference",
}


class EngineDegradedWarning(UserWarning):
    """A fast engine faulted and the run fell back to a safer tier."""


def next_tier(engine_name: str, engine: Optional[object] = None) -> Optional[str]:
    """The engine to fall back to when *engine_name* faults, or ``None``.

    When the live *engine* object declares a ``degrade_to`` attribute (the
    fault-injection wrappers do, naming the tier below the engine they
    wrap), that takes precedence — a wrapped ``event`` engine degrades into
    the real ``fused``, not into a chain lookup of its wrapper name.
    """
    declared = getattr(engine, "degrade_to", None)
    if declared is not None:
        return str(declared)
    return DEGRADATION_CHAIN.get(engine_name)


def degradation_path(engine_name: str) -> List[str]:
    """The full fallback walk starting at *engine_name* (inclusive).

    ``degradation_path("qevent") == ["qevent", "qfused", "fused",
    "reference"]``; an engine outside the chain is its own single-element
    path.  Used by the resilience-analysis harness to bound the number of
    degradation hops a scenario may legitimately take.
    """
    path = [engine_name]
    while path[-1] in DEGRADATION_CHAIN:
        path.append(DEGRADATION_CHAIN[path[-1]])
    return path
