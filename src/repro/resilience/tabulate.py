"""Aggregate scenario-ensemble outcomes into a versioned resilience report.

The runner in :mod:`repro.resilience.explore` produces one
:class:`~repro.resilience.explore.ScenarioOutcome` per sampled fault
scenario; this module folds the ensemble into a
:class:`ResilienceReport` — per-engine / per-fault-kind outcome tables,
availability ratios, worst-case recovery cost — serialized as a versioned
JSON artifact and a Markdown summary.

Determinism contract: :meth:`ResilienceReport.to_json` is canonical —
sorted keys, no wall-clock fields (timings are opt-in via
``timings=True``) — so the same fault space + sample seed yields a
byte-identical report and resilience regressions diff cleanly in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.analysis.report import format_table
from repro.errors import CheckpointError
from repro.resilience.explore import (
    OUTCOME_DEGRADED,
    OUTCOME_LOST_WORK,
    OUTCOME_RESUMED,
    OUTCOME_UNRECOVERED,
    OUTCOMES,
    ScenarioOutcome,
)

#: Schema version of the report JSON.  Readers follow the same tolerance
#: rule as the sweep manifest: accept any version >= 1, ignore unknown keys.
REPORT_VERSION = 1

#: The ``"kind"`` discriminator stamped into every report file.
REPORT_KIND = "repro-resilience-report"


@dataclass
class ResilienceReport:
    """The tabulated result of one scenario ensemble.

    ``space`` and ``workload`` are the serialized inputs (for provenance
    and re-runs); ``sample`` records the subsample request (``None`` for a
    full-factorial run).  All aggregate tables are derived from
    ``outcomes`` at serialization time, so the report cannot drift from
    its own data.
    """

    space: Dict[str, Any]
    workload: Dict[str, Any]
    outcomes: List[ScenarioOutcome]
    sample: Optional[Dict[str, int]] = None
    extra: Dict[str, Any] = field(default_factory=dict)

    # -- aggregation ----------------------------------------------------

    def outcome_counts(self) -> Dict[str, int]:
        """Ensemble-wide scenario count per outcome class."""
        counts = {outcome: 0 for outcome in OUTCOMES}
        for result in self.outcomes:
            counts[result.outcome] = counts.get(result.outcome, 0) + 1
        return counts

    def by_engine_and_kind(self) -> Dict[str, Dict[str, Dict[str, int]]]:
        """Nested counts: engine → fault kind → outcome class."""
        table: Dict[str, Dict[str, Dict[str, int]]] = {}
        for result in self.outcomes:
            engine = result.scenario.engine
            kind = result.scenario.kind
            cell = table.setdefault(engine, {}).setdefault(
                kind, {outcome: 0 for outcome in OUTCOMES}
            )
            cell[result.outcome] = cell.get(result.outcome, 0) + 1
        return table

    def availability(self) -> Dict[str, Dict[str, float]]:
        """Per-engine availability ratios.

        ``no_lost_work`` — fraction of scenarios where no completed
        presentation had to be redone (resumed bit-identically or degraded
        in place); ``recovered`` — fraction that reached a contractual
        final state at all (everything but ``UNRECOVERED``).
        """
        ratios: Dict[str, Dict[str, float]] = {}
        per_engine: Dict[str, List[ScenarioOutcome]] = {}
        for result in self.outcomes:
            per_engine.setdefault(result.scenario.engine, []).append(result)
        for engine, results in sorted(per_engine.items()):
            total = len(results)
            kept = sum(
                1
                for r in results
                if r.outcome in (OUTCOME_RESUMED, OUTCOME_DEGRADED)
            )
            unrecovered = sum(
                1 for r in results if r.outcome == OUTCOME_UNRECOVERED
            )
            ratios[engine] = {
                "scenarios": float(total),
                "no_lost_work": kept / total,
                "recovered": (total - unrecovered) / total,
            }
        return ratios

    def worst_case(self) -> Dict[str, Any]:
        """The most expensive recovery observed, in deterministic units."""
        if not self.outcomes:
            return {
                "work_lost": 0,
                "work_lost_scenario": None,
                "checkpoint_bytes": 0,
                "hops": 0,
            }
        by_work = max(self.outcomes, key=lambda r: r.work_lost)
        return {
            "work_lost": by_work.work_lost,
            "work_lost_scenario": (
                by_work.scenario.scenario_id if by_work.work_lost > 0 else None
            ),
            "checkpoint_bytes": max(r.checkpoint_bytes for r in self.outcomes),
            "hops": max(r.hops for r in self.outcomes),
        }

    # -- the --check gate -----------------------------------------------

    def check(self) -> List[str]:
        """Contract violations: any ``UNRECOVERED`` scenario, and any
        scenario whose engine contract promises bit-identity but whose
        observed recovery diverged.  Empty list = the gate passes."""
        problems: List[str] = []
        for result in self.outcomes:
            sid = result.scenario.scenario_id
            if result.outcome == OUTCOME_UNRECOVERED:
                problems.append(f"{sid}: UNRECOVERED ({result.detail})")
            elif result.expected_exact and not result.bit_identical:
                problems.append(
                    f"{sid}: contract promises bit-identical recovery but "
                    f"the observed state diverged"
                )
        return problems

    # -- serialization --------------------------------------------------

    def to_dict(self, timings: bool = False) -> Dict[str, Any]:
        return {
            "kind": REPORT_KIND,
            "schema_version": REPORT_VERSION,
            "space": self.space,
            "workload": self.workload,
            "sample": self.sample,
            "n_scenarios": len(self.outcomes),
            "outcome_counts": self.outcome_counts(),
            "by_engine": self.by_engine_and_kind(),
            "availability": self.availability(),
            "worst_case": self.worst_case(),
            "outcomes": [r.to_dict(timings=timings) for r in self.outcomes],
            **self.extra,
        }

    def to_json(self, timings: bool = False) -> str:
        """Canonical JSON: sorted keys, trailing newline, no wall clock."""
        return json.dumps(self.to_dict(timings=timings), indent=2, sort_keys=True) + "\n"

    def save(self, path: Union[str, Path], timings: bool = False) -> None:
        Path(path).write_text(self.to_json(timings=timings))

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ResilienceReport":
        """Rebuild from :meth:`to_dict` output (tolerant loading).

        Unknown top-level keys are preserved in ``extra``; aggregate
        tables are recomputed from the outcomes rather than trusted.
        """
        if not isinstance(payload, dict) or "outcomes" not in payload:
            raise CheckpointError(
                "resilience report payload is missing the 'outcomes' list"
            )
        version = payload.get("schema_version")
        if not isinstance(version, int) or version < 1:
            raise CheckpointError(
                f"resilience report has no usable schema version "
                f"(got {version!r}); this build writes version "
                f"{REPORT_VERSION} and reads any version >= 1"
            )
        known = {
            "kind",
            "schema_version",
            "space",
            "workload",
            "sample",
            "n_scenarios",
            "outcome_counts",
            "by_engine",
            "availability",
            "worst_case",
            "outcomes",
        }
        return cls(
            space=dict(payload.get("space", {})),
            workload=dict(payload.get("workload", {})),
            outcomes=[
                ScenarioOutcome.from_dict(entry) for entry in payload["outcomes"]
            ],
            sample=payload.get("sample"),
            extra={k: v for k, v in payload.items() if k not in known},
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ResilienceReport":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"resilience report {path} is unreadable or not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(payload)

    # -- human-facing summary -------------------------------------------

    def markdown(self) -> str:
        """The Markdown summary ``scripts/make_report.py`` embeds."""
        counts = self.outcome_counts()
        lines = [
            f"{len(self.outcomes)} scenarios: "
            + ", ".join(f"{counts[o]} {o}" for o in OUTCOMES)
        ]
        rows = []
        for engine, kinds in sorted(self.by_engine_and_kind().items()):
            for kind, cell in sorted(kinds.items()):
                rows.append(
                    [engine, kind]
                    + [str(cell[outcome]) for outcome in OUTCOMES]
                )
        outcome_headers = ["engine", "fault kind", "resumed", "degraded",
                           "lost work", "unrecovered"]
        lines.append("")
        lines.append(format_table(outcome_headers, rows, title="Outcomes"))
        avail_rows = [
            [
                engine,
                f"{int(ratios['scenarios'])}",
                f"{ratios['no_lost_work']:.3f}",
                f"{ratios['recovered']:.3f}",
            ]
            for engine, ratios in sorted(self.availability().items())
        ]
        lines.append("")
        lines.append(
            format_table(
                ["engine", "scenarios", "no-lost-work", "recovered"],
                avail_rows,
                title="Availability",
            )
        )
        worst = self.worst_case()
        lines.append("")
        lines.append(
            f"Worst case: {worst['work_lost']} presentations of lost work"
            + (
                f" ({worst['work_lost_scenario']})"
                if worst["work_lost_scenario"]
                else ""
            )
            + f"; largest checkpoint {worst['checkpoint_bytes']} bytes; "
            f"deepest degradation {worst['hops']} hop(s)."
        )
        return "\n".join(lines) + "\n"
