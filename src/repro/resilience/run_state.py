"""Full training-run state: what a v2 checkpoint captures and restores.

A training run is a deterministic function of ``(config, dataset, seed)``
once the network's learned state, the positions of every RNG stream and the
run position (presentation index, simulation clock, log counters) are
fixed.  :class:`TrainingRunState` is exactly that tuple, captured at a
*presentation boundary* — the point in the trainer loop where all fast
state (membranes, currents, timers) has just been reset by
:meth:`~repro.network.wta.WTANetwork.rest`, so it does not need to be
stored: a freshly built network is bit-identical to a just-rested one.

The resulting contract, pinned by ``tests/test_resilience_resume.py``: a
run killed after any presentation and resumed from the state captured at
that boundary produces bit-identical conductances, thresholds and neuron
labels to the uninterrupted run, for every sequential engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.config.parameters import ExperimentConfig
from repro.errors import CheckpointError
from repro.learning.homeostasis import WeightNormalizer
from repro.learning.stochastic import LTDMode
from repro.network.wta import WTANetwork
from repro.pipeline.trainer import TrainingLog

#: Version of the ``run_json`` field layout inside a v2 checkpoint.
RUN_STATE_VERSION = 1


@dataclass
class TrainingRunState:
    """Everything needed to continue a training run bit-identically."""

    config: ExperimentConfig
    n_pixels: int
    #: Learned state (already on the quantiser's storage grid).
    conductances: np.ndarray
    theta: np.ndarray
    #: ``RngStreams.state_dict()`` — exact bit-generator positions.
    rng_state: Dict[str, Any]
    #: Presentations completed so far (flat index across epochs).
    presentation_index: int
    #: Total epochs the run was started with.
    epochs: int
    #: Images per epoch (validates the dataset handed to the resume).
    n_images: int
    #: Simulation clock at the boundary (ms).
    t_ms: float
    #: Weight-normaliser schedule position (``_images_seen``).
    normalizer_images_seen: int
    #: TrainingLog counters at the boundary.
    total_steps: int = 0
    simulated_ms: float = 0.0
    normalizations: int = 0
    steps_skipped: int = 0
    raster_cells: int = 0
    raster_active_cells: int = 0
    spikes_per_image: List[int] = field(default_factory=list)
    #: Optional post-training neuron labels (v1 parity).
    neuron_labels: Optional[np.ndarray] = None
    #: Free-form metadata (dataset generation parameters, engine name...).
    extra: Dict[str, Any] = field(default_factory=dict)
    #: Where this state was loaded from, if anywhere (not persisted).
    source: Optional[str] = None

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------

    @classmethod
    def capture(
        cls,
        network: WTANetwork,
        log: TrainingLog,
        t_ms: float,
        presentation_index: int,
        epochs: int,
        n_images: int,
        normalizer: Optional[WeightNormalizer] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> "TrainingRunState":
        """Snapshot *network* and run position at a presentation boundary.

        Arrays are copied, so the snapshot stays valid while the run
        continues mutating the live network.
        """
        return cls(
            config=network.config,
            n_pixels=network.n_pixels,
            conductances=network.conductances.copy(),
            theta=network.neurons.theta.copy(),
            rng_state=network.rngs.state_dict(),
            presentation_index=int(presentation_index),
            epochs=int(epochs),
            n_images=int(n_images),
            t_ms=float(t_ms),
            normalizer_images_seen=(
                normalizer._images_seen if normalizer is not None else 0
            ),
            total_steps=log.total_steps,
            simulated_ms=log.simulated_ms,
            normalizations=log.normalizations,
            steps_skipped=log.steps_skipped,
            raster_cells=log.raster_cells,
            raster_active_cells=log.raster_active_cells,
            spikes_per_image=list(log.spikes_per_image),
            extra=dict(extra) if extra else {},
        )

    # ------------------------------------------------------------------
    # (de)serialisation helpers used by repro.io.checkpoint
    # ------------------------------------------------------------------

    def run_fields(self) -> Dict[str, Any]:
        """The scalar run-position fields, as one JSON-serialisable dict."""
        return {
            "version": RUN_STATE_VERSION,
            "presentation_index": self.presentation_index,
            "epochs": self.epochs,
            "n_images": self.n_images,
            "t_ms": self.t_ms,
            "normalizer_images_seen": self.normalizer_images_seen,
            "total_steps": self.total_steps,
            "simulated_ms": self.simulated_ms,
            "normalizations": self.normalizations,
            "steps_skipped": self.steps_skipped,
            "raster_cells": self.raster_cells,
            "raster_active_cells": self.raster_active_cells,
            "extra": self.extra,
        }

    @classmethod
    def from_payload(
        cls,
        config: ExperimentConfig,
        n_pixels: int,
        conductances: np.ndarray,
        theta: np.ndarray,
        rng_state: Dict[str, Any],
        run: Dict[str, Any],
        spikes_per_image: Sequence[int],
        neuron_labels: Optional[np.ndarray] = None,
        source: Optional[str] = None,
    ) -> "TrainingRunState":
        """Rebuild a state from decoded checkpoint fields (validating them)."""
        version = run.get("version")
        if version != RUN_STATE_VERSION:
            raise CheckpointError(
                f"unsupported run-state version {version!r} "
                f"(this build reads version {RUN_STATE_VERSION})"
            )
        try:
            return cls(
                config=config,
                n_pixels=int(n_pixels),
                conductances=np.asarray(conductances, dtype=np.float64),
                theta=np.asarray(theta, dtype=np.float64),
                rng_state=dict(rng_state),
                presentation_index=int(run["presentation_index"]),
                epochs=int(run["epochs"]),
                n_images=int(run["n_images"]),
                t_ms=float(run["t_ms"]),
                normalizer_images_seen=int(run["normalizer_images_seen"]),
                total_steps=int(run["total_steps"]),
                simulated_ms=float(run["simulated_ms"]),
                normalizations=int(run["normalizations"]),
                steps_skipped=int(run["steps_skipped"]),
                raster_cells=int(run["raster_cells"]),
                raster_active_cells=int(run["raster_active_cells"]),
                spikes_per_image=[int(s) for s in spikes_per_image],
                neuron_labels=neuron_labels,
                extra=dict(run.get("extra", {})),
                source=source,
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise CheckpointError(
                f"malformed run-state fields in checkpoint: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # restore
    # ------------------------------------------------------------------

    def to_log(self) -> TrainingLog:
        """A :class:`TrainingLog` primed with the counters at the boundary."""
        log = TrainingLog(
            images_seen=self.presentation_index,
            total_steps=self.total_steps,
            simulated_ms=self.simulated_ms,
            normalizations=self.normalizations,
            steps_skipped=self.steps_skipped,
            raster_cells=self.raster_cells,
            raster_active_cells=self.raster_active_cells,
        )
        log.spikes_per_image = list(self.spikes_per_image)
        return log

    def restore_into(
        self,
        network: WTANetwork,
        normalizer: Optional[WeightNormalizer] = None,
    ) -> None:
        """Overwrite *network*'s learned state and RNG streams in place.

        Conductances are copied **directly** into the storage buffer rather
        than through ``set_conductances``: the stored values came off a live
        run, so they are already on the quantiser grid, and re-quantising
        would advance the rounding stream — breaking the bit-identical
        resume contract.  Fast state is cleared to the post-rest values the
        boundary guarantees.
        """
        if network.n_pixels != self.n_pixels:
            raise CheckpointError(
                f"cannot restore run state for {self.n_pixels} input pixels "
                f"into a network with {network.n_pixels}"
            )
        if network.conductances.shape != self.conductances.shape:
            raise CheckpointError(
                f"stored conductances {self.conductances.shape} do not match "
                f"the network shape {network.conductances.shape}"
            )
        if network.neurons.theta.shape != self.theta.shape:
            raise CheckpointError(
                f"stored theta {self.theta.shape} does not match the network "
                f"neuron count {network.neurons.theta.shape}"
            )
        np.copyto(network.synapses.g, self.conductances)
        np.copyto(network.neurons.theta, self.theta)
        network.rngs.load_state_dict(self.rng_state)
        network.learning_enabled = True
        network.rest()
        if normalizer is not None:
            normalizer._images_seen = self.normalizer_images_seen

    def build_network(self, ltd_mode: LTDMode = LTDMode.POST_EVENT) -> WTANetwork:
        """A fresh network carrying this state (the resume entry point)."""
        network = WTANetwork(self.config, self.n_pixels, ltd_mode=ltd_mode)
        self.restore_into(network)
        return network


def load_run_state(
    source: Union[str, "TrainingRunState", Any]
) -> "TrainingRunState":
    """Coerce a path or an in-memory state into a ``TrainingRunState``.

    The trainer's ``resume_from`` accepts either; this keeps the
    pipeline-side import of :mod:`repro.io.checkpoint` in one place (and
    lazy, which breaks the io ↔ resilience import cycle).
    """
    if isinstance(source, TrainingRunState):
        return source
    from repro.io.checkpoint import load_run_checkpoint

    return load_run_checkpoint(source)
