"""Periodic checkpoint autosave for long training runs.

The paper's headline runs train on the full MNIST set for hours; a SIGKILL
anywhere in that window must not cost the whole run.  :class:`AutosavePolicy`
is the trainer-side hook: every ``every_images`` presentation boundaries it
captures a :class:`~repro.resilience.run_state.TrainingRunState` and writes
it to one v2 checkpoint path with the atomic write-temp-then-rename
protocol of :mod:`repro.io.checkpoint` — the file on disk is always a
complete, loadable checkpoint, no matter when the process dies.

The policy also accounts for its own cost (``seconds_spent``,
``saves_written``), which ``scripts/bench_training.py`` reports as the
autosave-overhead trajectory column and gates at 3 % of training wall-time.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.errors import ConfigurationError
from repro.learning.homeostasis import WeightNormalizer
from repro.network.wta import WTANetwork
from repro.pipeline.trainer import TrainingLog
from repro.resilience.run_state import TrainingRunState


class AutosavePolicy:
    """Write a v2 run checkpoint every *every_images* presentations.

    ``extra`` metadata (e.g. the dataset generation parameters the CLI
    stores) travels inside every checkpoint, so ``python -m repro resume``
    can rebuild the run without re-specifying flags.
    """

    def __init__(
        self,
        path: Union[str, Path],
        every_images: int = 50,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        if every_images < 1:
            raise ConfigurationError(
                f"autosave every_images must be >= 1, got {every_images}"
            )
        self.path = Path(path)
        self.every_images = int(every_images)
        self.extra: Dict[str, Any] = dict(extra) if extra else {}
        #: Wall-clock seconds spent capturing + writing checkpoints.
        self.seconds_spent = 0.0
        #: Checkpoints written so far.
        self.saves_written = 0

    def due(self, presentation_index: int) -> bool:
        """Whether the boundary after presentation *presentation_index* saves."""
        return presentation_index % self.every_images == 0

    def maybe_save(
        self,
        network: WTANetwork,
        log: TrainingLog,
        t_ms: float,
        presentation_index: int,
        epochs: int,
        n_images: int,
        normalizer: Optional[WeightNormalizer] = None,
    ) -> bool:
        """Checkpoint if this boundary is on the schedule; returns True if saved."""
        if not self.due(presentation_index):
            return False
        self.save(
            network, log, t_ms, presentation_index, epochs, n_images, normalizer
        )
        return True

    def save(
        self,
        network: WTANetwork,
        log: TrainingLog,
        t_ms: float,
        presentation_index: int,
        epochs: int,
        n_images: int,
        normalizer: Optional[WeightNormalizer] = None,
    ) -> TrainingRunState:
        """Capture and persist the run state unconditionally."""
        from repro.io.checkpoint import save_run_checkpoint

        start = time.perf_counter()
        state = TrainingRunState.capture(
            network,
            log,
            t_ms,
            presentation_index,
            epochs,
            n_images,
            normalizer=normalizer,
            extra=self.extra,
        )
        save_run_checkpoint(self.path, state)
        self.seconds_spent += time.perf_counter() - start
        self.saves_written += 1
        return state

    def overhead_fraction(self, total_wall_seconds: float) -> float:
        """Autosave cost as a fraction of *total_wall_seconds*."""
        if total_wall_seconds <= 0.0:
            return 0.0
        return self.seconds_spent / total_wall_seconds
