"""Numeric-health sentinel: invariant monitoring for running networks.

Low-precision STDP runs can be silently poisoned by a single NaN membrane
potential or an out-of-range conductance — learning continues, every
subsequent update is garbage, and the failure only surfaces hours later as
an inexplicable accuracy collapse.  :class:`NumericHealthSentinel` turns
that silent corruption into a loud, diagnosable
:class:`~repro.errors.NumericHealthError` raised within one cadence window
of the violation, carrying a state snapshot for post-mortem inspection.

Invariants checked (each against the live network state):

- **finite-membrane** — membrane potentials and synaptic currents are all
  finite;
- **conductance-range** — conductances are finite and inside the active
  quantiser range ``[g_min, g_max]`` (the Q-format's representable band,
  with a small float tolerance);
- **theta-health** — adaptive-threshold offsets are finite, non-negative
  and below a configurable degeneracy ceiling (a runaway theta silences a
  neuron permanently — homeostasis gone unstable).

The sentinel attaches to any presentation engine
(:meth:`~repro.engine.presentation.PresentationEngine.attach_sentinel`) and
is invoked at presentation boundaries by the engine's evaluation loop and
by the trainer; ``cadence`` sets how many presentations pass between
checks (1 = every boundary).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import ConfigurationError, NumericHealthError
from repro.network.wta import WTANetwork

#: Absolute slack beyond [g_min, g_max] tolerated before a conductance
#: counts as out of range (float accumulation noise, not corruption).
RANGE_ATOL = 1e-9

#: Default ceiling on any single theta offset before the adaptive
#: threshold is declared degenerate.  The paper-scale theta_plus is ~0.05
#: with a slow decay; an offset of 1e3 means a neuron has been driven
#: orders of magnitude past any recoverable operating point.
DEFAULT_THETA_CEILING = 1e3


def _array_stats(arr: np.ndarray) -> Dict[str, Any]:
    """Compact diagnostics for one state array (NaN-safe)."""
    finite = np.isfinite(arr)
    stats: Dict[str, Any] = {
        "shape": list(arr.shape),
        "n_nonfinite": int(arr.size - int(np.count_nonzero(finite))),
    }
    if finite.any():
        stats["min"] = float(arr[finite].min())
        stats["max"] = float(arr[finite].max())
    return stats


class NumericHealthSentinel:
    """Configurable-cadence invariant monitor over a training/eval run."""

    def __init__(
        self,
        cadence: int = 1,
        theta_ceiling: float = DEFAULT_THETA_CEILING,
        snapshot_arrays: bool = True,
    ) -> None:
        """*cadence* — presentations between checks (1 = every boundary).

        *snapshot_arrays* — include copies of the offending state arrays in
        the error snapshot (disable for very large networks where the
        summary statistics are enough).
        """
        if cadence < 1:
            raise ConfigurationError(f"sentinel cadence must be >= 1, got {cadence}")
        if theta_ceiling <= 0.0:
            raise ConfigurationError(
                f"theta_ceiling must be positive, got {theta_ceiling}"
            )
        self.cadence = int(cadence)
        self.theta_ceiling = float(theta_ceiling)
        self.snapshot_arrays = snapshot_arrays
        #: Presentations observed since construction (drives the cadence).
        self.presentations_seen = 0
        #: Checks actually executed.
        self.checks_run = 0

    # ------------------------------------------------------------------
    # engine/trainer hook
    # ------------------------------------------------------------------

    def after_presentation(
        self,
        network: WTANetwork,
        t_ms: float,
        presentation_index: int,
    ) -> None:
        """Boundary hook: runs :meth:`check` every ``cadence`` presentations."""
        self.presentations_seen += 1
        if self.presentations_seen % self.cadence == 0:
            self.check(network, t_ms=t_ms, presentation_index=presentation_index)

    # ------------------------------------------------------------------
    # the invariants
    # ------------------------------------------------------------------

    def check(
        self,
        network: WTANetwork,
        t_ms: Optional[float] = None,
        presentation_index: Optional[int] = None,
    ) -> None:
        """Verify every invariant now; raise :class:`NumericHealthError` if any fails."""
        self.checks_run += 1
        violations: List[str] = []
        suspects: Dict[str, np.ndarray] = {}

        v = network.neurons.v
        if not np.isfinite(v).all():
            violations.append(
                f"finite-membrane: {int(np.count_nonzero(~np.isfinite(v)))} "
                f"non-finite membrane potential(s)"
            )
            suspects["v"] = v
        current = network._current
        if not np.isfinite(current).all():
            violations.append(
                f"finite-membrane: {int(np.count_nonzero(~np.isfinite(current)))} "
                f"non-finite synaptic current(s)"
            )
            suspects["current"] = current

        g = network.conductances
        g_min = network.synapses.g_min - RANGE_ATOL
        g_max = network.synapses.g_max + RANGE_ATOL
        finite_g = np.isfinite(g)
        if not finite_g.all():
            violations.append(
                f"conductance-range: {int(np.count_nonzero(~finite_g))} "
                f"non-finite conductance(s)"
            )
            suspects["conductances"] = g
        else:
            out = np.count_nonzero((g < g_min) | (g > g_max))
            if out:
                violations.append(
                    f"conductance-range: {int(out)} conductance(s) outside the "
                    f"active storage range [{network.synapses.g_min}, "
                    f"{network.synapses.g_max}]"
                )
                suspects["conductances"] = g

        theta = network.neurons.theta
        finite_t = np.isfinite(theta)
        if not finite_t.all():
            violations.append(
                f"theta-health: {int(np.count_nonzero(~finite_t))} "
                f"non-finite threshold offset(s)"
            )
            suspects["theta"] = theta
        else:
            if (theta < 0.0).any():
                violations.append(
                    f"theta-health: negative threshold offset(s) "
                    f"(min {float(theta.min()):.3e})"
                )
                suspects["theta"] = theta
            if (theta > self.theta_ceiling).any():
                violations.append(
                    f"theta-health: threshold offset(s) above the degeneracy "
                    f"ceiling {self.theta_ceiling:g} "
                    f"(max {float(theta[finite_t].max()):.3e})"
                )
                suspects["theta"] = theta

        if not violations:
            return

        snapshot: Dict[str, Any] = {
            "violations": list(violations),
            "t_ms": t_ms,
            "presentation_index": presentation_index,
            "checks_run": self.checks_run,
            "stats": {
                "v": _array_stats(v),
                "current": _array_stats(current),
                "conductances": _array_stats(g),
                "theta": _array_stats(theta),
            },
        }
        if self.snapshot_arrays:
            snapshot["arrays"] = {
                name: np.array(arr) for name, arr in suspects.items()
            }
        where = (
            f" at presentation {presentation_index}"
            if presentation_index is not None
            else ""
        )
        raise NumericHealthError(
            "numeric-health invariant violation"
            + where
            + ": "
            + "; ".join(violations),
            snapshot=snapshot,
        )
