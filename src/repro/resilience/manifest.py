"""Persisted sweep-results manifest: finished cells survive a crashed sweep.

A parameter sweep is a grid of independent ``(variant, seed)`` cells; when
the orchestrating process dies after completing most of them, restarting
from scratch throws away hours of work.  :class:`SweepManifest` is a small
JSON ledger the sweep updates after **every** cell (atomically — temp file
then ``os.replace``, the same protocol as the checkpoints): rerunning the
sweep with the same manifest path skips cells already recorded as done and
recomputes only the incomplete or failed ones.

The ledger also doubles as the failure record — a cell that exhausts its
retries is written with ``status="failed"`` and the error text, so one
crashing worker no longer aborts the whole pool silently.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import CheckpointError

#: Manifest schema version written by this build.  v1 files carried the
#: number under ``"version"``; v2 adds an explicit ``"schema_version"``
#: field and the tolerant-loading contract: readers accept any version
#: >= 1, ignore (but preserve) unknown top-level keys, and re-emit them on
#: save — so manifests written by a newer build survive a round trip
#: through an older one and vice versa.
MANIFEST_VERSION = 2

#: Cell states a manifest records.
STATUS_DONE = "done"
STATUS_FAILED = "failed"


def cell_key(variant: str, seed: int) -> str:
    """The manifest key for one sweep cell."""
    return f"{variant}::{seed}"


class SweepManifest:
    """Atomic JSON ledger of per-cell sweep outcomes.

    Construction loads any existing ledger at *path* (so a resumed sweep
    sees prior results); a missing file starts empty.  All mutating calls
    persist immediately — the on-disk state is never more than one cell
    behind the in-memory state.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.cells: Dict[str, Dict[str, Any]] = {}
        #: Schema version of the file that was loaded (this build's
        #: :data:`MANIFEST_VERSION` for a fresh manifest).
        self.loaded_version: int = MANIFEST_VERSION
        #: Unknown top-level keys from the loaded file, preserved verbatim
        #: and re-emitted on save (forward compatibility).
        self.extra: Dict[str, Any] = {}
        if self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"sweep manifest {self.path} is unreadable or not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict) or "cells" not in payload:
            raise CheckpointError(
                f"sweep manifest {self.path} is missing the 'cells' table"
            )
        version = payload.get("schema_version", payload.get("version"))
        if not isinstance(version, int) or version < 1:
            raise CheckpointError(
                f"sweep manifest {self.path} has no usable schema version "
                f"(got {version!r}); this build writes version "
                f"{MANIFEST_VERSION} and reads any version >= 1"
            )
        cells = payload["cells"]
        if not isinstance(cells, dict):
            raise CheckpointError(
                f"sweep manifest {self.path}: 'cells' must be an object"
            )
        self.loaded_version = version
        self.cells = {str(k): dict(v) for k, v in cells.items()}
        self.extra = {
            k: v
            for k, v in payload.items()
            if k not in ("version", "schema_version", "cells")
        }

    def save(self) -> None:
        """Atomically write the ledger (temp file + fsync + replace)."""
        payload = {
            **self.extra,
            "version": MANIFEST_VERSION,
            "schema_version": MANIFEST_VERSION,
            "cells": self.cells,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            with open(tmp, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
        except BaseException:
            if tmp.exists():
                tmp.unlink()
            raise

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def record_done(
        self, variant: str, seed: int, score: float, attempts: int = 1
    ) -> None:
        """A cell completed; persisted immediately."""
        self.cells[cell_key(variant, seed)] = {
            "status": STATUS_DONE,
            "variant": variant,
            "seed": int(seed),
            "score": float(score),
            "attempts": int(attempts),
        }
        self.save()

    def record_failure(
        self, variant: str, seed: int, error: str, attempts: int
    ) -> None:
        """A cell exhausted its retries; persisted immediately."""
        self.cells[cell_key(variant, seed)] = {
            "status": STATUS_FAILED,
            "variant": variant,
            "seed": int(seed),
            "error": str(error),
            "attempts": int(attempts),
        }
        self.save()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def get(self, variant: str, seed: int) -> Optional[Dict[str, Any]]:
        return self.cells.get(cell_key(variant, seed))

    def is_done(self, variant: str, seed: int) -> bool:
        cell = self.get(variant, seed)
        return cell is not None and cell.get("status") == STATUS_DONE

    def score(self, variant: str, seed: int) -> float:
        """The recorded score of a done cell (KeyError-free lookup is
        :meth:`is_done` first)."""
        cell = self.get(variant, seed)
        if cell is None or cell.get("status") != STATUS_DONE:
            raise CheckpointError(
                f"sweep manifest has no completed result for "
                f"({variant!r}, seed {seed})"
            )
        return float(cell["score"])

    def failures(self) -> List[Dict[str, Any]]:
        """All cells recorded as permanently failed."""
        return [
            dict(cell)
            for _, cell in sorted(self.cells.items())
            if cell.get("status") == STATUS_FAILED
        ]

    def done_count(self) -> int:
        return sum(
            1 for cell in self.cells.values() if cell.get("status") == STATUS_DONE
        )

    def pending(
        self, variants: List[str], seeds: List[int]
    ) -> Iterator[Tuple[str, int]]:
        """Grid cells not yet recorded as done (failed cells are retried)."""
        for variant in variants:
            for seed in seeds:
                if not self.is_done(variant, seed):
                    yield variant, seed
