"""Deterministic retry with exponential backoff, shared across the harness.

Both the fault-tolerant :class:`~repro.pipeline.sweep.ParameterSweep` and
the resilience scenario runner (:mod:`repro.resilience.explore`) retry
transiently-failing units of work.  The schedule lives here once, as a
frozen :class:`RetryPolicy`, so both callers agree on the semantics:

- attempt *k* (1-based) that fails sleeps ``backoff_s * multiplier**(k-1)``
  before the next attempt — the classic exponential ladder, optionally
  capped by ``max_backoff_s``;
- **no jitter**: randomised backoff would make retried runs wall-clock
  dependent and break the byte-identical-report contract.  The sweep and
  the scenario runner are single-tenant on their own files, so the
  thundering-herd argument for jitter does not apply;
- the sleep function is injectable, so tests assert the exact schedule
  without sleeping.

:func:`run_with_retry` is the execution helper: call a thunk up to
``policy.attempts()`` times, re-raising the last exception once the
attempts are exhausted.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failing unit of work, and how to wait.

    ``max_retries=0`` (the default) means one attempt, no retries — the
    policy is then a no-op wrapper.  ``backoff_s`` is the sleep before the
    *first* retry; each further retry multiplies it by ``multiplier``.
    ``max_backoff_s`` (when set) caps any single sleep.
    """

    max_retries: int = 0
    backoff_s: float = 0.0
    multiplier: float = 2.0
    max_backoff_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_s < 0.0:
            raise ConfigurationError(
                f"backoff_s must be >= 0, got {self.backoff_s}"
            )
        if self.multiplier < 1.0:
            raise ConfigurationError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_backoff_s < 0.0:
            raise ConfigurationError(
                f"max_backoff_s must be >= 0 (0 disables the cap), "
                f"got {self.max_backoff_s}"
            )

    def attempts(self) -> int:
        """Total attempts a unit of work gets (first try + retries)."""
        return 1 + self.max_retries

    def backoff_for(self, failed_attempts: int) -> float:
        """Seconds to sleep after the *failed_attempts*-th failure (1-based).

        Deterministic — same inputs, same schedule, no jitter.
        """
        if failed_attempts < 1:
            raise ConfigurationError(
                f"failed_attempts is 1-based, got {failed_attempts}"
            )
        delay = self.backoff_s * (self.multiplier ** (failed_attempts - 1))
        if self.max_backoff_s > 0.0:
            delay = min(delay, self.max_backoff_s)
        return delay

    def schedule(self) -> Tuple[float, ...]:
        """The full backoff ladder (one entry per allowed retry)."""
        return tuple(self.backoff_for(k) for k in range(1, self.max_retries + 1))


def run_with_retry(
    fn: Callable[[], Any],
    policy: RetryPolicy,
    sleep: Callable[[float], None] = time.sleep,
) -> Tuple[Any, int]:
    """Call *fn* under *policy*; return ``(value, attempt_number)``.

    On failure before the final attempt, sleeps ``policy.backoff_for(k)``
    (skipping zero-length sleeps) and tries again; once the attempts are
    exhausted the last exception propagates unchanged.
    """
    total = policy.attempts()
    for attempt in range(1, total + 1):
        try:
            return fn(), attempt
        except Exception:  # retry isolation boundary
            if attempt >= total:
                raise
            delay = policy.backoff_for(attempt)
            if delay > 0.0:
                sleep(delay)
    raise AssertionError("unreachable: retry loop exited without returning")
