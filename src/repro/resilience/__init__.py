"""Fault tolerance for long runs: checkpoint-resume, invariant monitoring,
sweep recovery, graceful engine degradation, and the deterministic
fault-injection harness that proves each mechanism works.

Layering: this package may import the network/engine/pipeline layers at
module level; the reverse edges (``pipeline`` → resilience, ``io`` →
resilience) are function-local, so importing any single module here — or
any module there — never cycles.
"""

from repro.resilience.autosave import AutosavePolicy
from repro.resilience.degrade import (
    DEGRADATION_CHAIN,
    EngineDegradedWarning,
    next_tier,
)
from repro.resilience.manifest import SweepManifest, cell_key
from repro.resilience.run_state import (
    RUN_STATE_VERSION,
    TrainingRunState,
    load_run_state,
)
from repro.resilience.sentinel import NumericHealthSentinel

__all__ = [
    "AutosavePolicy",
    "DEGRADATION_CHAIN",
    "EngineDegradedWarning",
    "NumericHealthSentinel",
    "RUN_STATE_VERSION",
    "SweepManifest",
    "TrainingRunState",
    "cell_key",
    "load_run_state",
    "next_tier",
]
