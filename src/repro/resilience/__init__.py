"""Fault tolerance for long runs: checkpoint-resume, invariant monitoring,
sweep recovery, graceful engine degradation, the deterministic
fault-injection harness that proves each mechanism works, and the
resilience-analysis harness (:mod:`repro.resilience.explore` +
:mod:`repro.resilience.tabulate`) that quantifies them across a sampled
fault space.

Layering: this package may import the network/engine/pipeline layers at
module level; the reverse edges (``pipeline`` → resilience, ``io`` →
resilience) are function-local, so importing any single module here — or
any module there — never cycles.
"""

from repro.resilience.autosave import AutosavePolicy
from repro.resilience.degrade import (
    DEGRADATION_CHAIN,
    EngineDegradedWarning,
    degradation_path,
    next_tier,
)
from repro.resilience.explore import (
    FAULT_KINDS,
    OUTCOMES,
    FaultScenario,
    FaultSpace,
    ScenarioOutcome,
    ScenarioRunner,
    ScenarioWorkload,
    default_space,
    smoke_space,
)
from repro.resilience.manifest import MANIFEST_VERSION, SweepManifest, cell_key
from repro.resilience.retry import RetryPolicy, run_with_retry
from repro.resilience.run_state import (
    RUN_STATE_VERSION,
    TrainingRunState,
    load_run_state,
)
from repro.resilience.sentinel import NumericHealthSentinel
from repro.resilience.tabulate import REPORT_VERSION, ResilienceReport

__all__ = [
    "AutosavePolicy",
    "DEGRADATION_CHAIN",
    "EngineDegradedWarning",
    "FAULT_KINDS",
    "FaultScenario",
    "FaultSpace",
    "MANIFEST_VERSION",
    "NumericHealthSentinel",
    "OUTCOMES",
    "REPORT_VERSION",
    "RUN_STATE_VERSION",
    "ResilienceReport",
    "RetryPolicy",
    "ScenarioOutcome",
    "ScenarioRunner",
    "ScenarioWorkload",
    "SweepManifest",
    "TrainingRunState",
    "cell_key",
    "default_space",
    "degradation_path",
    "load_run_state",
    "next_tier",
    "run_with_retry",
    "smoke_space",
]
