"""Deterministic fault injection: prove the recovery paths, don't hope.

Every resilience mechanism in this package has a matching injector here,
so the test suite can *demonstrate* recovery instead of asserting it
abstractly:

- :class:`CrashFault` — simulates a SIGKILL at a chosen presentation
  boundary (raises :class:`SimulatedCrash` from the trainer's
  ``on_image_end`` hook), for the kill-and-resume bit-identity tests;
- :class:`WorkerDeathFault` — kills (or raises inside) a sweep worker for
  chosen seeds, exactly *once* per marker directory, for the
  fault-tolerant ``ParameterSweep`` tests;
- :class:`FaultyEngine` + :func:`install_faulty_engine` — a registry
  engine wrapping a real one that raises :class:`InjectedFault` or writes
  NaN/out-of-range values into live state at a scheduled presentation, for
  the sentinel and engine-degradation tests;
- :func:`truncate_file` / :func:`corrupt_file` — deterministic, seeded
  on-disk damage for the checkpoint/cache corruption tests.

Everything is seeded or index-scheduled — a failing resilience test
reproduces exactly.  The heavyweight injections (actually killing spawned
pool workers) are additionally gated behind ``REPRO_FAULTS=1``
(:func:`faults_enabled`), which the dedicated CI fault-injection job sets.
"""

from __future__ import annotations

import itertools
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.engine.registry import (
    EngineSpec,
    Equivalence,
    get_engine_spec,
    register_engine,
    unregister_engine,
)
from repro.errors import ConfigurationError
from repro.resilience.degrade import DEGRADATION_CHAIN

#: Environment switch for the heavyweight fault-injection tests (worker
#: process kills).  The lightweight, exception-based injections run in the
#: regular tier-1 suite regardless.
FAULTS_ENV = "REPRO_FAULTS"

#: Accepted spellings for the :data:`FAULTS_ENV` switch (case-insensitive,
#: surrounding whitespace ignored).  Anything else is a configuration
#: error — ``REPRO_FAULTS=off`` silently *enabling* the heavyweight suite
#: is exactly the kind of surprise a fault harness must not have.
FAULTS_ENV_TRUE = frozenset({"1", "true", "yes", "on"})
FAULTS_ENV_FALSE = frozenset({"", "0", "false", "no", "off"})


def faults_enabled() -> bool:
    """Whether the heavyweight fault-injection suite is switched on.

    ``REPRO_FAULTS`` must be one of :data:`FAULTS_ENV_TRUE` (enables) or
    :data:`FAULTS_ENV_FALSE` (disables, same as unset); other values raise
    :class:`~repro.errors.ConfigurationError` instead of guessing.
    """
    raw = os.environ.get(FAULTS_ENV, "")
    value = raw.strip().lower()
    if value in FAULTS_ENV_TRUE:
        return True
    if value in FAULTS_ENV_FALSE:
        return False
    raise ConfigurationError(
        f"{FAULTS_ENV}={raw!r} is not a recognised switch value; use one of "
        f"{sorted(FAULTS_ENV_TRUE)} to enable or "
        f"{sorted(v for v in FAULTS_ENV_FALSE if v)} (or unset) to disable"
    )


class InjectedFault(RuntimeError):
    """An artificial failure raised by an injector.

    Deliberately **not** a :class:`~repro.errors.ReproError`: recovery code
    must handle arbitrary unexpected exceptions, and a library-error
    subclass would let it cheat by catching the friendly base class.
    """


class SimulatedCrash(InjectedFault):
    """Stands in for SIGKILL in tests: aborts the run at a boundary."""


# ----------------------------------------------------------------------
# trainer-side: kill-and-resume
# ----------------------------------------------------------------------


@dataclass
class CrashFault:
    """Raise :class:`SimulatedCrash` after presentation *at_presentation*.

    Use as (or inside) the trainer's ``on_image_end`` hook::

        fault = CrashFault(at_presentation=7)
        with pytest.raises(SimulatedCrash):
            trainer.train(images, autosave=policy, on_image_end=fault)

    The crash fires *after* the boundary's autosave has run — exactly the
    worst-case instant a real SIGKILL could land without losing the
    checkpoint.
    """

    at_presentation: int
    fired: bool = False

    def __call__(self, image_index: int, _log: object = None) -> None:
        if image_index + 1 == self.at_presentation:
            self.fired = True
            raise SimulatedCrash(
                f"injected crash after presentation {self.at_presentation}"
            )


# ----------------------------------------------------------------------
# sweep-side: worker death
# ----------------------------------------------------------------------

#: Monotonic suffix for auto-generated marker run-ids (process-unique
#: together with the pid; deliberately not wall-clock based).
_RUN_ID_COUNTER = itertools.count()


def _next_run_id() -> str:
    """A fresh marker-ownership id: pid + in-process counter, no clocks."""
    return f"{os.getpid()}-{next(_RUN_ID_COUNTER)}"


def _claim_marker(marker: Path, run_id: str) -> bool:
    """Atomically claim a once-only marker file, evicting stale ones.

    The marker stores the owning *run_id*.  An existing marker whose
    content differs from a non-empty *run_id* was left behind by a
    previous (interrupted) run — it is removed and re-claimed, so a fresh
    fault instance starts with its full once-only budget instead of
    silently never firing.  With ``run_id == ""`` any existing marker
    counts as already claimed (explicit shared-claim mode: several
    instances given the same empty or matching id share one budget).
    """
    marker.parent.mkdir(parents=True, exist_ok=True)
    if run_id:
        try:
            stale = marker.read_text() != run_id
        except FileNotFoundError:
            stale = False
        except OSError:
            stale = True
        if stale:
            try:
                marker.unlink()
            except FileNotFoundError:
                pass
    try:
        with open(marker, "x") as handle:
            handle.write(run_id)
        return True
    except FileExistsError:
        return False


@dataclass(frozen=True)
class WorkerDeathFault:
    """Fail a sweep cell for the given seeds, once per marker directory.

    Picklable (it ships to spawn-context pool workers inside the payload).
    ``mode="exception"`` raises :class:`InjectedFault` inside the worker —
    the pool survives, the cell fails cleanly.  ``mode="exit"`` calls
    ``os._exit``, genuinely killing the worker process the way an OOM kill
    would (this breaks the pool; the sweep must rebuild it) — that mode
    requires ``REPRO_FAULTS=1``.

    *marker_dir* provides once-only semantics across retries and across
    processes: the first trigger atomically creates a marker file; later
    attempts on the same cell see it and pass, so a retried cell succeeds.
    Markers store the instance's *run_id* (:func:`WorkerDeathFault.for_seeds`
    generates one per instance); a marker left by a previous interrupted
    run carries a different id, is treated as stale and is cleaned up on
    the next claim.  Pass the same explicit ``run_id`` to several
    instances to share one once-only budget.
    """

    seeds: FrozenSet[int]
    marker_dir: str
    mode: str = "exception"
    variant: Optional[str] = None
    run_id: str = ""

    def __post_init__(self) -> None:
        if self.mode not in ("exception", "exit"):
            raise ConfigurationError(
                f"WorkerDeathFault mode must be 'exception' or 'exit', "
                f"got {self.mode!r}"
            )

    @classmethod
    def for_seeds(
        cls,
        seeds: Iterable[int],
        marker_dir: Union[str, Path],
        mode: str = "exception",
        variant: Optional[str] = None,
        run_id: Optional[str] = None,
    ) -> "WorkerDeathFault":
        return cls(
            seeds=frozenset(int(s) for s in seeds),
            marker_dir=str(marker_dir),
            mode=mode,
            variant=variant,
            run_id=_next_run_id() if run_id is None else str(run_id),
        )

    def _claim(self, variant: str, seed: int) -> bool:
        """Atomically claim the one allowed trigger for this cell."""
        marker = Path(self.marker_dir) / f"fault-{variant}-{seed}.marker"
        return _claim_marker(marker, self.run_id)

    def maybe_trigger(self, variant: str, seed: int) -> None:
        """Called by the sweep worker before running a cell."""
        if seed not in self.seeds:
            return
        if self.variant is not None and variant != self.variant:
            return
        if not self._claim(variant, seed):
            return
        if self.mode == "exit":
            if not faults_enabled():
                raise ConfigurationError(
                    f"WorkerDeathFault(mode='exit') kills real worker "
                    f"processes; set {FAULTS_ENV}=1 to enable it"
                )
            os._exit(13)
        raise InjectedFault(
            f"injected worker death for sweep cell ({variant!r}, seed {seed})"
        )


@dataclass(frozen=True)
class HangFault:
    """Stall a sweep cell for *seconds*, once per marker directory.

    Emulates a hung worker (deadlocked BLAS, stuck I/O) for the sweep's
    ``worker_timeout_s`` detection: the first attempt on a matching cell
    sleeps well past the timeout window, later attempts pass.  Picklable,
    with the same atomic marker-file once-semantics and stale-marker
    cleanup as :class:`WorkerDeathFault`.
    """

    seeds: FrozenSet[int]
    marker_dir: str
    seconds: float = 5.0
    variant: Optional[str] = None
    run_id: str = ""

    @classmethod
    def for_seeds(
        cls,
        seeds: Iterable[int],
        marker_dir: Union[str, Path],
        seconds: float = 5.0,
        variant: Optional[str] = None,
        run_id: Optional[str] = None,
    ) -> "HangFault":
        return cls(
            seeds=frozenset(int(s) for s in seeds),
            marker_dir=str(marker_dir),
            seconds=float(seconds),
            variant=variant,
            run_id=_next_run_id() if run_id is None else str(run_id),
        )

    def maybe_trigger(self, variant: str, seed: int) -> None:
        if seed not in self.seeds:
            return
        if self.variant is not None and variant != self.variant:
            return
        marker = Path(self.marker_dir) / f"hang-{variant}-{seed}.marker"
        if not _claim_marker(marker, self.run_id):
            return
        time.sleep(self.seconds)


# ----------------------------------------------------------------------
# engine-side: step exceptions and state contamination
# ----------------------------------------------------------------------

#: Per-wrapper parameter blocks read by :class:`FaultyEngine` at
#: construction, keyed by registered engine name (the registry's
#: ``module:Class`` factories take only the network, so the schedule
#: travels out of band).  Several wrappers may be installed at once —
#: :func:`install_faulty_chain` registers one per tier.
_FAULTY_PARAMS: Dict[str, Dict[str, Any]] = {}


class FaultyEngine:
    """A registered engine delegating to a real one, with scheduled faults.

    Modes (chosen at :func:`install_faulty_engine` time):

    - ``"raise"`` — the scheduled presentation raises :class:`InjectedFault`
      *before* touching network state (the boundary snapshot stays valid,
      which is what makes degradation + replay exact);
    - ``"nan"`` — the scheduled presentation completes, then a NaN is
      written into the adaptive-threshold array (persistent state, so it
      survives the boundary rest; the sentinel must catch it);
    - ``"g_range"`` — like ``"nan"`` but pushes one conductance far above
      the quantiser's ``g_max`` (the out-of-range invariant).

    ``fail_times`` bounds how many scheduled presentations fault (so a
    degrade-and-replay loop terminates); scheduling counts *this
    instance's* ``run`` calls, so a rebuilt engine starts fresh.

    Each registered wrapper name has its own schedule in
    :data:`_FAULTY_PARAMS` — :func:`install_faulty_engine` installs one,
    :func:`install_faulty_chain` installs a whole ladder of them (the
    ``name`` class attribute on the dynamic subclass selects the block).
    """

    name = "faulty"

    def __init__(self, network: object) -> None:
        params = _FAULTY_PARAMS.get(self.name)
        if params is None:
            raise ConfigurationError(
                f"FaultyEngine {self.name!r} constructed without "
                f"install_faulty_engine(); the fault schedule is undefined"
            )
        from repro.engine.registry import create_engine

        self.network = network
        self.inner_name: str = params["inner"]
        self.fail_at: int = params["fail_at"]
        self.fail_times: int = params["fail_times"]
        self.mode: str = params["mode"]
        self._inner = create_engine(self.inner_name, network)
        self._runs = 0
        self._faults_fired = 0
        #: Consumed by repro.resilience.degrade.next_tier.  An installed
        #: override wins (chain wrappers point at the next wrapper);
        #: otherwise fall back to the real chain below the wrapped engine.
        declared = params.get("degrade_to")
        self.degrade_to = (
            str(declared)
            if declared is not None
            else DEGRADATION_CHAIN.get(self.inner_name)
        )
        self.sentinel = None

    @property
    def spec(self) -> EngineSpec:
        return get_engine_spec(self.name)

    @property
    def stats(self) -> Optional[object]:
        return getattr(self._inner, "stats", None)

    def attach_sentinel(self, sentinel: object) -> "FaultyEngine":
        self.sentinel = sentinel
        if hasattr(self._inner, "attach_sentinel"):
            self._inner.attach_sentinel(sentinel)
        return self

    def run(
        self,
        image: np.ndarray,
        t_ms: float,
        n_steps: int,
        dt_ms: float,
        profiler: Optional[object] = None,
        out_counts: Optional[np.ndarray] = None,
    ) -> Tuple[int, float]:
        self._runs += 1
        scheduled = (
            self._runs == self.fail_at and self._faults_fired < self.fail_times
        )
        if scheduled and self.mode == "raise":
            self._faults_fired += 1
            raise InjectedFault(
                f"injected engine fault in {self.inner_name!r} at "
                f"presentation call {self._runs}"
            )
        result = self._inner.run(
            image, t_ms, n_steps, dt_ms, profiler=profiler, out_counts=out_counts
        )
        if scheduled and self.mode == "nan":
            self._faults_fired += 1
            self.network.neurons.theta[0] = np.nan
        elif scheduled and self.mode == "g_range":
            self._faults_fired += 1
            self.network.conductances[0, 0] = self.network.synapses.g_max + 1e3
        return result

    def collect_responses(
        self,
        images: np.ndarray,
        t_present_ms: float,
        progress: Optional[object] = None,
        label: str = "responses",
    ) -> np.ndarray:
        return self._inner.collect_responses(
            images, t_present_ms, progress=progress, label=label
        )


def _faulty_class_attr(name: str) -> str:
    """The module attribute holding the dynamic subclass for *name*."""
    return "_FaultyEngine_" + re.sub(r"\W", "_", name)


def _faulty_factory(name: str) -> str:
    """A ``module:Class`` factory string for the wrapper named *name*.

    The registry only accepts string factories, and the base class carries
    ``name = "faulty"`` — so every other registered name gets a dynamic
    :class:`FaultyEngine` subclass pinned to this module, whose sole
    override is the ``name`` class attribute selecting its parameter
    block in :data:`_FAULTY_PARAMS`.
    """
    if name == "faulty":
        return "repro.resilience.faults:FaultyEngine"
    attr = _faulty_class_attr(name)
    cls = type(attr.lstrip("_"), (FaultyEngine,), {"name": name})
    globals()[attr] = cls
    return f"repro.resilience.faults:{attr}"


def install_faulty_engine(
    inner: str = "event",
    fail_at: int = 1,
    fail_times: int = 1,
    mode: str = "raise",
    name: str = "faulty",
    degrade_to: Optional[str] = None,
) -> EngineSpec:
    """Register a :class:`FaultyEngine` wrapping *inner* under *name*.

    Returns the spec; call :func:`uninstall_faulty_engine` (or
    ``unregister_engine(name)``) to clean up.  Each registered *name* has
    its own independent fault schedule, so several wrappers can coexist
    (:func:`install_faulty_chain` builds on that).  *degrade_to* overrides
    the wrapper's fallback tier; by default it degrades into the real
    chain entry below *inner*.
    """
    if mode not in ("raise", "nan", "g_range"):
        raise ConfigurationError(
            f"faulty-engine mode must be 'raise', 'nan' or 'g_range', got {mode!r}"
        )
    if fail_at < 1 or fail_times < 0:
        raise ConfigurationError(
            f"fail_at must be >= 1 and fail_times >= 0, "
            f"got fail_at={fail_at}, fail_times={fail_times}"
        )
    inner_spec = get_engine_spec(inner)
    _FAULTY_PARAMS[name] = {
        "inner": inner,
        "fail_at": fail_at,
        "fail_times": fail_times,
        "mode": mode,
        "degrade_to": degrade_to,
    }
    spec = EngineSpec(
        name=name,
        factory=_faulty_factory(name),
        supports_learning=inner_spec.supports_learning,
        supports_batch=inner_spec.supports_batch,
        equivalence=inner_spec.equivalence,
        backends=inner_spec.backends,
        summary=f"fault-injection wrapper around {inner!r} ({mode} at {fail_at})",
    )
    return register_engine(spec, replace=True)


def uninstall_faulty_engine(name: str = "faulty") -> None:
    """Remove the fault wrapper registered as *name*, and its schedule."""
    _FAULTY_PARAMS.pop(name, None)
    globals().pop(_faulty_class_attr(name), None)
    try:
        unregister_engine(name)
    except ConfigurationError:
        pass


def install_faulty_chain(
    engines: Sequence[str],
    fail_at: int = 1,
    mode: str = "raise",
    prefix: str = "faulty-",
) -> List[str]:
    """Register one fault wrapper per tier so a run walks the whole chain.

    ``install_faulty_chain(["qevent", "qfused", "fused"], fail_at=3)``
    registers ``faulty-qevent`` → ``faulty-qfused`` → ``faulty-fused``,
    where each wrapper degrades into the *next wrapper* and the last one
    into the real tier below its engine (``reference`` here).  The entry
    wrapper faults at presentation *fail_at*; every inner wrapper faults
    on its first ``run`` call — which is exactly the re-presentation of
    the same image after the boundary rollback — so one presentation
    cascades through every tier in a single degrading run, emitting one
    :class:`~repro.resilience.degrade.EngineDegradedWarning` per hop.

    Returns the registered wrapper names (train with the first); clean up
    with :func:`uninstall_faulty_chain`.
    """
    if not engines:
        raise ConfigurationError("install_faulty_chain needs at least one engine")
    names = [prefix + engine for engine in engines]
    for index, engine in enumerate(engines):
        if index + 1 < len(engines):
            fallback: Optional[str] = names[index + 1]
        else:
            fallback = DEGRADATION_CHAIN.get(engine)
        install_faulty_engine(
            inner=engine,
            fail_at=fail_at if index == 0 else 1,
            fail_times=1,
            mode=mode,
            name=names[index],
            degrade_to=fallback,
        )
    return names


def uninstall_faulty_chain(
    engines: Sequence[str], prefix: str = "faulty-"
) -> None:
    """Remove every wrapper registered by :func:`install_faulty_chain`."""
    for engine in engines:
        uninstall_faulty_engine(prefix + engine)


# ----------------------------------------------------------------------
# file-side: checkpoint / cache damage
# ----------------------------------------------------------------------


def truncate_file(path: Union[str, Path], keep_fraction: float = 0.5) -> int:
    """Truncate *path* to *keep_fraction* of its size; returns bytes kept.

    Emulates a crash mid-write for loaders that must reject torn files
    (the atomic checkpoint protocol makes this unreachable for checkpoints
    written by this library — the test proves the *loader* survives files
    damaged by other means).
    """
    if not 0.0 <= keep_fraction < 1.0:
        raise ConfigurationError(
            f"keep_fraction must be in [0, 1), got {keep_fraction}"
        )
    path = Path(path)
    size = path.stat().st_size
    keep = int(size * keep_fraction)
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return keep


def corrupt_file(
    path: Union[str, Path], n_bytes: int = 16, seed: int = 0
) -> None:
    """Flip *n_bytes* deterministically chosen bytes of *path* in place."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ConfigurationError(f"cannot corrupt empty file {path}")
    rng = np.random.default_rng(seed)
    positions = rng.integers(0, len(data), size=min(n_bytes, len(data)))
    for pos in positions:
        data[int(pos)] ^= 0xFF
    path.write_bytes(bytes(data))
