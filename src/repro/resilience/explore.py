"""Resilience analysis: sample the fault space, run scenario ensembles.

PR 5 built deterministic fault injectors and the recovery machinery they
exercise; this module turns them into a *quantified availability story*,
following the nasa-fmdtools shape: define a fault space, sample it into
concrete scenarios, run each scenario end to end against a small
deterministic workload, and classify how the system recovered.

Three layers:

1. **Fault-space sampling** — :class:`FaultSpace` declares the axes
   (fault kind × injection presentation × engine × autosave cadence ×
   checkpoint-damage mode); :meth:`FaultSpace.scenarios` expands the
   full factorial per kind, :meth:`FaultSpace.sample` draws a seeded
   subsample.  Each point is a serializable :class:`FaultScenario`.
2. **Scenario execution** — :class:`ScenarioRunner` drives each scenario
   through the matching injector (:class:`~repro.resilience.faults.CrashFault`,
   :func:`~repro.resilience.faults.install_faulty_engine`,
   :func:`~repro.resilience.faults.truncate_file` /
   :func:`~repro.resilience.faults.corrupt_file`) and executes the
   matching recovery path (resume from autosave, degradation chain,
   cache regeneration), classifying the result into one of
   :data:`OUTCOMES` with work-lost / checkpoint-size metrics.
3. **Tabulation** — :mod:`repro.resilience.tabulate` aggregates the
   ensemble into a versioned :class:`~repro.resilience.tabulate.ResilienceReport`.

Determinism contract: everything an outcome records except
``recovery_seconds`` is a pure function of (space, sample seed, workload)
— the workload is seeded, the injectors are index-scheduled, damage-byte
positions derive from the scenario id — so the same space + seed yields a
byte-identical report (timings are excluded from the canonical
serialization and only included on request).
"""

from __future__ import annotations

import time
import warnings
import zlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.config.parameters import (
    ExperimentConfig,
    QuantizationConfig,
    RoundingMode,
    STDPKind,
    SimulationParameters,
)
from repro.config.presets import get_preset
from repro.datasets.cache import cached_load_dataset
from repro.datasets.dataset import load_dataset
from repro.engine.registry import get_engine_spec
from repro.errors import CheckpointError, ConfigurationError
from repro.network.wta import WTANetwork
from repro.pipeline.trainer import UnsupervisedTrainer
from repro.resilience.autosave import AutosavePolicy
from repro.resilience.degrade import EngineDegradedWarning, degradation_path
from repro.resilience.faults import (
    CrashFault,
    SimulatedCrash,
    corrupt_file,
    install_faulty_engine,
    truncate_file,
    uninstall_faulty_engine,
)
from repro.resilience.retry import RetryPolicy, run_with_retry
from repro.resilience.run_state import load_run_state

# ----------------------------------------------------------------------
# taxonomy
# ----------------------------------------------------------------------

#: Fault kinds a scenario can inject.
KIND_CRASH = "crash"
KIND_ENGINE_FAULT = "engine_fault"
KIND_CACHE_CORRUPTION = "cache_corruption"
FAULT_KINDS: Tuple[str, ...] = (KIND_CRASH, KIND_ENGINE_FAULT, KIND_CACHE_CORRUPTION)

#: Checkpoint/cache damage applied after the fault (crash and cache kinds).
DAMAGE_NONE = "none"
DAMAGE_TRUNCATE = "truncate"
DAMAGE_CORRUPT = "corrupt"
DAMAGE_MODES: Tuple[str, ...] = (DAMAGE_NONE, DAMAGE_TRUNCATE, DAMAGE_CORRUPT)

#: Outcome classes, best to worst.  ``RESUMED_BIT_IDENTICAL``: the run
#: recovered onto exactly the uninterrupted trajectory.  ``DEGRADED``: the
#: run finished on a lower engine tier, inside that tier's published
#: equivalence contract.  ``LOST_WORK``: recovery required recomputing
#: completed presentations (e.g. restart from scratch) but reached the
#: correct final state.  ``UNRECOVERED``: no recovery path produced the
#: contractual result — always a defect.
OUTCOME_RESUMED = "RESUMED_BIT_IDENTICAL"
OUTCOME_DEGRADED = "DEGRADED"
OUTCOME_LOST_WORK = "LOST_WORK"
OUTCOME_UNRECOVERED = "UNRECOVERED"
OUTCOMES: Tuple[str, ...] = (
    OUTCOME_RESUMED,
    OUTCOME_DEGRADED,
    OUTCOME_LOST_WORK,
    OUTCOME_UNRECOVERED,
)

#: Pseudo-engine label for scenarios that never run a training engine
#: (cache corruption damages the dataset store, not a run).
DATASET_ENGINE = "dataset"

#: Engines whose degraded run must reproduce the clean same-engine run's
#: conductances bit for bit: ``fused`` falls to the bit-identical
#: ``reference``, ``qfused`` to ``fused`` (identical arithmetic under the
#: workload's deterministic rounding), ``qevent`` to ``qfused`` (identical
#: code streams).  ``event``'s fallback only matches to the closed-form
#: jump tolerance.
ENGINES_EXACT_CONDUCTANCES = frozenset({"fused", "qfused", "qevent"})
#: Engines whose degraded run additionally reproduces theta bit for bit
#: (``qevent``'s closed-form theta jumps reorder float products, so theta
#: agrees only to ~1e-9 against its ``qfused`` fallback).
ENGINES_EXACT_THETA = frozenset({"fused", "qfused"})
#: Tolerance for the non-exact comparisons (the event tier's published
#: closed-form-jump equivalence bound).
DEGRADE_ATOL = 1e-9


def _damage_seed(scenario_id: str) -> int:
    """Deterministic per-scenario seed for damage-byte positions."""
    return zlib.crc32(scenario_id.encode("utf-8")) & 0x7FFFFFFF


# ----------------------------------------------------------------------
# layer 1: the declarative fault space
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FaultScenario:
    """One sampled point of the fault space, fully serializable.

    ``autosave_every == 0`` means no autosave (crash scenarios then have
    nothing to resume from and are expected to cost a full restart);
    ``damage`` applies to the checkpoint (crash kind) or the dataset cache
    entry (cache kind).
    """

    kind: str
    engine: str
    at_presentation: int = 1
    autosave_every: int = 0
    damage: str = DAMAGE_NONE

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known: {list(FAULT_KINDS)}"
            )
        if self.damage not in DAMAGE_MODES:
            raise ConfigurationError(
                f"unknown damage mode {self.damage!r}; known: {list(DAMAGE_MODES)}"
            )
        if not self.engine:
            raise ConfigurationError("scenario engine must be non-empty")
        if self.at_presentation < 1:
            raise ConfigurationError(
                f"at_presentation must be >= 1, got {self.at_presentation}"
            )
        if self.autosave_every < 0:
            raise ConfigurationError(
                f"autosave_every must be >= 0, got {self.autosave_every}"
            )

    @property
    def scenario_id(self) -> str:
        """A stable human-readable key, unique within any one space."""
        return (
            f"{self.kind}:{self.engine}:p{self.at_presentation}"
            f":a{self.autosave_every}:{self.damage}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "engine": self.engine,
            "at_presentation": self.at_presentation,
            "autosave_every": self.autosave_every,
            "damage": self.damage,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultScenario":
        """Rebuild from :meth:`to_dict` output; unknown keys are ignored."""
        return cls(
            kind=str(payload["kind"]),
            engine=str(payload["engine"]),
            at_presentation=int(payload.get("at_presentation", 1)),
            autosave_every=int(payload.get("autosave_every", 0)),
            damage=str(payload.get("damage", DAMAGE_NONE)),
        )


@dataclass(frozen=True)
class FaultSpace:
    """The declarative axes the harness explores.

    :meth:`scenarios` expands a full factorial *per kind* — kinds do not
    share every axis: engine faults need no autosave or file damage, and
    cache corruption involves no engine or injection index — so the
    factorial is taken over each kind's meaningful axes only.
    """

    kinds: Tuple[str, ...] = FAULT_KINDS
    engines: Tuple[str, ...] = ("fused", "event", "qevent")
    at_presentations: Tuple[int, ...] = (3, 6)
    autosave_cadences: Tuple[int, ...] = (2, 4)
    damage_modes: Tuple[str, ...] = DAMAGE_MODES

    def __post_init__(self) -> None:
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ConfigurationError(
                    f"unknown fault kind {kind!r}; known: {list(FAULT_KINDS)}"
                )
        for damage in self.damage_modes:
            if damage not in DAMAGE_MODES:
                raise ConfigurationError(
                    f"unknown damage mode {damage!r}; known: {list(DAMAGE_MODES)}"
                )
        if not self.kinds:
            raise ConfigurationError("a fault space needs at least one kind")
        if any(k in (KIND_CRASH, KIND_ENGINE_FAULT) for k in self.kinds):
            if not self.engines:
                raise ConfigurationError(
                    "crash/engine_fault kinds need at least one engine"
                )
            if not self.at_presentations:
                raise ConfigurationError(
                    "crash/engine_fault kinds need at least one at_presentation"
                )
        for at in self.at_presentations:
            if at < 1:
                raise ConfigurationError(
                    f"at_presentations entries must be >= 1, got {at}"
                )
        for cadence in self.autosave_cadences:
            if cadence < 1:
                raise ConfigurationError(
                    f"autosave_cadences entries must be >= 1, got {cadence}"
                )

    def scenarios(self) -> List[FaultScenario]:
        """The full factorial expansion, in deterministic axis order."""
        out: List[FaultScenario] = []
        for kind in self.kinds:
            if kind == KIND_CRASH:
                for engine in self.engines:
                    for at in self.at_presentations:
                        for cadence in self.autosave_cadences:
                            for damage in self.damage_modes:
                                out.append(
                                    FaultScenario(kind, engine, at, cadence, damage)
                                )
            elif kind == KIND_ENGINE_FAULT:
                for engine in self.engines:
                    for at in self.at_presentations:
                        out.append(FaultScenario(kind, engine, at, 0, DAMAGE_NONE))
            else:  # KIND_CACHE_CORRUPTION
                damages = [d for d in self.damage_modes if d != DAMAGE_NONE]
                for damage in damages or [DAMAGE_CORRUPT]:
                    out.append(FaultScenario(kind, DATASET_ENGINE, 1, 0, damage))
        return out

    def sample(self, n: int, seed: int = 0) -> List[FaultScenario]:
        """A seeded subsample of :meth:`scenarios`, original order kept."""
        if n < 1:
            raise ConfigurationError(f"sample size must be >= 1, got {n}")
        scenarios = self.scenarios()
        if n >= len(scenarios):
            return scenarios
        rng = np.random.default_rng(seed)
        chosen = rng.choice(len(scenarios), size=n, replace=False)
        return [scenarios[i] for i in sorted(int(i) for i in chosen)]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kinds": list(self.kinds),
            "engines": list(self.engines),
            "at_presentations": list(self.at_presentations),
            "autosave_cadences": list(self.autosave_cadences),
            "damage_modes": list(self.damage_modes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultSpace":
        """Rebuild from :meth:`to_dict` JSON; unknown keys are ignored and
        missing axes keep their defaults."""
        default = cls()
        return cls(
            kinds=tuple(payload.get("kinds", default.kinds)),
            engines=tuple(payload.get("engines", default.engines)),
            at_presentations=tuple(
                int(v) for v in payload.get("at_presentations", default.at_presentations)
            ),
            autosave_cadences=tuple(
                int(v) for v in payload.get("autosave_cadences", default.autosave_cadences)
            ),
            damage_modes=tuple(payload.get("damage_modes", default.damage_modes)),
        )


def default_space() -> FaultSpace:
    """The default analysis space: 3 kinds × 3 engines × 2 injection points
    × 2 cadences × 3 damage modes (44 scenarios)."""
    return FaultSpace()


def smoke_space() -> FaultSpace:
    """A small space for CI smoke runs (11 scenarios, float engines only)."""
    return FaultSpace(
        engines=("fused", "event"),
        at_presentations=(3,),
        autosave_cadences=(2, 4),
        damage_modes=(DAMAGE_NONE, DAMAGE_TRUNCATE),
    )


# ----------------------------------------------------------------------
# layer 2: the deterministic workload and the scenario runner
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ScenarioWorkload:
    """The small, fully seeded training workload every scenario runs.

    Mirrors the test suite's tiny fixtures: 8 WTA neurons over 8×8
    synthetic digits, 50 ms presentations.  Quantized engines get a
    Q-format config with **deterministic** rounding, because the
    cross-tier degradation contract (qevent → qfused → fused) is
    bit-identical only when rounding consumes no RNG.
    """

    n_images: int = 8
    n_neurons: int = 8
    image_size: int = 8
    dataset_seed: int = 42
    config_seed: int = 0
    dt_ms: float = 1.0
    t_learn_ms: float = 50.0
    t_rest_ms: float = 5.0
    quantized_fmt: str = "Q1.7"

    def load_images(self) -> np.ndarray:
        """The training images (synthetic, generated from the seed)."""
        dataset = load_dataset(
            "mnist",
            n_train=self.n_images,
            n_test=4,
            size=self.image_size,
            seed=self.dataset_seed,
        )
        return dataset.train_images

    def config_for(self, engine: str) -> ExperimentConfig:
        """The experiment config a scenario on *engine* trains with."""
        config = get_preset(
            "float32",
            stdp_kind=STDPKind.STOCHASTIC,
            n_neurons=self.n_neurons,
            seed=self.config_seed,
        )
        config = replace(
            config,
            wta=replace(config.wta, n_neurons=self.n_neurons),
            simulation=SimulationParameters(
                dt_ms=self.dt_ms,
                t_learn_ms=self.t_learn_ms,
                t_rest_ms=self.t_rest_ms,
                seed=self.config_seed,
            ),
        )
        if "float64" not in get_engine_spec(engine).precisions:
            config = replace(
                config,
                quantization=QuantizationConfig(
                    fmt=self.quantized_fmt, rounding=RoundingMode.NEAREST
                ),
            )
        return config

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_images": self.n_images,
            "n_neurons": self.n_neurons,
            "image_size": self.image_size,
            "dataset_seed": self.dataset_seed,
            "config_seed": self.config_seed,
            "dt_ms": self.dt_ms,
            "t_learn_ms": self.t_learn_ms,
            "t_rest_ms": self.t_rest_ms,
            "quantized_fmt": self.quantized_fmt,
        }


@dataclass(frozen=True)
class _Baseline:
    """Final state of the uninterrupted run a scenario is judged against."""

    conductances: np.ndarray
    theta: np.ndarray
    spikes: Tuple[int, ...]


@dataclass(frozen=True)
class ScenarioOutcome:
    """How one scenario ended.

    ``bit_identical`` records what was *observed* (all compared state
    exactly equal); ``expected_exact`` what the engine contract *promises*
    — a scenario with ``expected_exact and not bit_identical`` is a
    contract violation even when the outcome class looks benign.
    ``work_lost`` counts completed presentations that had to be redone;
    ``recovery_seconds`` is wall clock and therefore excluded from the
    canonical serialization (``to_dict(timings=False)``).
    """

    scenario: FaultScenario
    outcome: str
    bit_identical: bool
    expected_exact: bool
    work_lost: int = 0
    checkpoint_bytes: int = 0
    hops: int = 0
    degraded_to: Optional[str] = None
    detail: str = ""
    recovery_seconds: float = 0.0

    def to_dict(self, timings: bool = False) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "scenario": self.scenario.to_dict(),
            "scenario_id": self.scenario.scenario_id,
            "outcome": self.outcome,
            "bit_identical": self.bit_identical,
            "expected_exact": self.expected_exact,
            "work_lost": self.work_lost,
            "checkpoint_bytes": self.checkpoint_bytes,
            "hops": self.hops,
            "degraded_to": self.degraded_to,
            "detail": self.detail,
        }
        if timings:
            payload["recovery_seconds"] = self.recovery_seconds
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioOutcome":
        """Rebuild from :meth:`to_dict` output; unknown keys are ignored."""
        return cls(
            scenario=FaultScenario.from_dict(payload["scenario"]),
            outcome=str(payload["outcome"]),
            bit_identical=bool(payload["bit_identical"]),
            expected_exact=bool(payload["expected_exact"]),
            work_lost=int(payload.get("work_lost", 0)),
            checkpoint_bytes=int(payload.get("checkpoint_bytes", 0)),
            hops=int(payload.get("hops", 0)),
            degraded_to=payload.get("degraded_to"),
            detail=str(payload.get("detail", "")),
            recovery_seconds=float(payload.get("recovery_seconds", 0.0)),
        )


class ScenarioRunner:
    """Run :class:`FaultScenario` points against the deterministic workload.

    *workdir* holds the scenario checkpoints and cache entries (a temp
    directory in the CLI); clean per-engine baselines are computed once
    and cached.  Transient harness failures retry under the shared
    :class:`~repro.resilience.retry.RetryPolicy`; a scenario that still
    fails is classified ``UNRECOVERED`` rather than aborting the ensemble.
    """

    def __init__(
        self,
        workdir: Union[str, Path],
        workload: Optional[ScenarioWorkload] = None,
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.workload = workload if workload is not None else ScenarioWorkload()
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep
        self._images: Optional[np.ndarray] = None
        self._baselines: Dict[str, _Baseline] = {}

    # -- shared workload state -----------------------------------------

    def images(self) -> np.ndarray:
        if self._images is None:
            self._images = self.workload.load_images()
        return self._images

    def baseline(self, engine: str) -> _Baseline:
        """Final state of the clean, uninterrupted run on *engine*."""
        cached = self._baselines.get(engine)
        if cached is None:
            config = self.workload.config_for(engine)
            images = self.images()
            net = WTANetwork(config, images[0].size)
            log = UnsupervisedTrainer(net).train(images, engine=engine)
            cached = _Baseline(
                conductances=np.array(net.conductances, copy=True),
                theta=np.array(net.neurons.theta, copy=True),
                spikes=tuple(log.spikes_per_image),
            )
            self._baselines[engine] = cached
        return cached

    # -- execution ------------------------------------------------------

    def run(self, scenario: FaultScenario) -> ScenarioOutcome:
        """Execute one scenario (with retry), never raising for its fault."""
        try:
            outcome, _ = run_with_retry(
                lambda: self._run_once(scenario), self.retry, sleep=self._sleep
            )
            return outcome
        except Exception as exc:  # scenario isolation boundary
            return ScenarioOutcome(
                scenario=scenario,
                outcome=OUTCOME_UNRECOVERED,
                bit_identical=False,
                expected_exact=False,
                detail=f"harness error: {type(exc).__name__}",
            )

    def run_all(
        self,
        scenarios: List[FaultScenario],
        progress: Optional[Callable[[int, int, ScenarioOutcome], None]] = None,
    ) -> List[ScenarioOutcome]:
        outcomes = []
        for index, scenario in enumerate(scenarios):
            outcome = self.run(scenario)
            outcomes.append(outcome)
            if progress is not None:
                progress(index + 1, len(scenarios), outcome)
        return outcomes

    def _run_once(self, scenario: FaultScenario) -> ScenarioOutcome:
        if scenario.kind == KIND_CRASH:
            return self._run_crash(scenario)
        if scenario.kind == KIND_ENGINE_FAULT:
            return self._run_engine_fault(scenario)
        return self._run_cache_corruption(scenario)

    # -- crash + resume -------------------------------------------------

    def _run_crash(self, sc: FaultScenario) -> ScenarioOutcome:
        if sc.at_presentation > self.workload.n_images:
            raise ConfigurationError(
                f"scenario {sc.scenario_id} crashes at presentation "
                f"{sc.at_presentation} but the workload has only "
                f"{self.workload.n_images} images"
            )
        config = self.workload.config_for(sc.engine)
        images = self.images()
        base = self.baseline(sc.engine)
        ckpt = self.workdir / (sc.scenario_id.replace(":", "_") + ".npz")
        if ckpt.exists():
            ckpt.unlink()

        net = WTANetwork(config, images[0].size)
        fault = CrashFault(at_presentation=sc.at_presentation)
        autosave = (
            AutosavePolicy(ckpt, every_images=sc.autosave_every)
            if sc.autosave_every > 0
            else None
        )
        try:
            UnsupervisedTrainer(net).train(
                images, engine=sc.engine, autosave=autosave, on_image_end=fault
            )
            raise ConfigurationError(
                f"scenario {sc.scenario_id}: the injected crash never fired"
            )
        except SimulatedCrash:
            pass

        checkpoint_bytes = ckpt.stat().st_size if ckpt.exists() else 0
        if ckpt.exists() and sc.damage == DAMAGE_TRUNCATE:
            truncate_file(ckpt, keep_fraction=0.5)
        elif ckpt.exists() and sc.damage == DAMAGE_CORRUPT:
            corrupt_file(ckpt, n_bytes=64, seed=_damage_seed(sc.scenario_id))

        start = time.perf_counter()
        state = None
        detail = ""
        if not ckpt.exists():
            detail = "no checkpoint on disk at crash time; "
        else:
            try:
                state = load_run_state(str(ckpt))
            except CheckpointError:
                detail = "damaged checkpoint rejected by the loader; "

        if state is not None:
            resumed_at = state.presentation_index
            net2 = WTANetwork(config, images[0].size)
            log2 = UnsupervisedTrainer(net2).train(
                images, engine=sc.engine, resume_from=state
            )
            elapsed = time.perf_counter() - start
            if self._matches_exactly(net2, log2.spikes_per_image, base):
                return ScenarioOutcome(
                    scenario=sc,
                    outcome=OUTCOME_RESUMED,
                    bit_identical=True,
                    expected_exact=True,
                    work_lost=sc.at_presentation - resumed_at,
                    checkpoint_bytes=checkpoint_bytes,
                    detail=detail + f"resumed from presentation {resumed_at}",
                    recovery_seconds=elapsed,
                )
            return ScenarioOutcome(
                scenario=sc,
                outcome=OUTCOME_UNRECOVERED,
                bit_identical=False,
                expected_exact=True,
                work_lost=sc.at_presentation - resumed_at,
                checkpoint_bytes=checkpoint_bytes,
                detail=detail + "resumed state diverged from the clean run",
                recovery_seconds=elapsed,
            )

        # No loadable checkpoint: the recovery path is a full restart.
        net2 = WTANetwork(config, images[0].size)
        log2 = UnsupervisedTrainer(net2).train(images, engine=sc.engine)
        elapsed = time.perf_counter() - start
        identical = self._matches_exactly(net2, log2.spikes_per_image, base)
        return ScenarioOutcome(
            scenario=sc,
            outcome=OUTCOME_LOST_WORK if identical else OUTCOME_UNRECOVERED,
            bit_identical=identical,
            expected_exact=True,
            work_lost=sc.at_presentation,
            checkpoint_bytes=checkpoint_bytes,
            detail=detail + "restarted from scratch",
            recovery_seconds=elapsed,
        )

    @staticmethod
    def _matches_exactly(
        net: WTANetwork, spikes: List[int], base: _Baseline
    ) -> bool:
        return (
            tuple(spikes) == base.spikes
            and np.array_equal(net.conductances, base.conductances)
            and np.array_equal(net.neurons.theta, base.theta)
        )

    # -- engine fault + degradation ------------------------------------

    def _run_engine_fault(self, sc: FaultScenario) -> ScenarioOutcome:
        if sc.at_presentation > self.workload.n_images:
            raise ConfigurationError(
                f"scenario {sc.scenario_id} faults at presentation "
                f"{sc.at_presentation} but the workload has only "
                f"{self.workload.n_images} images"
            )
        chain = degradation_path(sc.engine)
        if len(chain) < 2:
            raise ConfigurationError(
                f"engine {sc.engine!r} has no degradation tier to fall back to"
            )
        config = self.workload.config_for(sc.engine)
        images = self.images()
        base = self.baseline(sc.engine)
        wrapper = f"faulty-{sc.engine}"
        install_faulty_engine(
            inner=sc.engine,
            fail_at=sc.at_presentation,
            fail_times=1,
            mode="raise",
            name=wrapper,
        )
        start = time.perf_counter()
        try:
            net = WTANetwork(config, images[0].size)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                log = UnsupervisedTrainer(net).train(
                    images, engine=wrapper, on_engine_fault="degrade"
                )
        finally:
            uninstall_faulty_engine(wrapper)
        elapsed = time.perf_counter() - start
        hops = sum(
            1 for w in caught if issubclass(w.category, EngineDegradedWarning)
        )

        g_exact = sc.engine in ENGINES_EXACT_CONDUCTANCES
        theta_exact = sc.engine in ENGINES_EXACT_THETA
        spikes_ok = tuple(log.spikes_per_image) == base.spikes
        g_equal = np.array_equal(net.conductances, base.conductances)
        theta_equal = np.array_equal(net.neurons.theta, base.theta)
        g_ok = g_equal if g_exact else bool(
            np.allclose(net.conductances, base.conductances, atol=DEGRADE_ATOL)
        )
        theta_ok = theta_equal if theta_exact else bool(
            np.allclose(net.neurons.theta, base.theta, atol=DEGRADE_ATOL)
        )
        contract_holds = hops >= 1 and spikes_ok and g_ok and theta_ok
        return ScenarioOutcome(
            scenario=sc,
            outcome=OUTCOME_DEGRADED if contract_holds else OUTCOME_UNRECOVERED,
            bit_identical=spikes_ok and g_equal and theta_equal,
            expected_exact=g_exact and theta_exact,
            hops=hops,
            degraded_to=chain[1] if hops >= 1 else None,
            detail=(
                f"degraded {sc.engine} -> {chain[1]} at presentation "
                f"{sc.at_presentation}"
                if contract_holds
                else "degraded run broke the fallback tier's equivalence contract"
            ),
            recovery_seconds=elapsed,
        )

    # -- cache corruption + regeneration -------------------------------

    def _run_cache_corruption(self, sc: FaultScenario) -> ScenarioOutcome:
        wl = self.workload
        cache_dir = self.workdir / f"cache-{sc.damage}"
        params: Dict[str, Any] = dict(
            n_train=wl.n_images,
            n_test=4,
            size=wl.image_size,
            seed=wl.dataset_seed,
            cache_dir=cache_dir,
        )
        pristine = cached_load_dataset("mnist", **params)
        entries = sorted(cache_dir.glob("*.npz"))
        if not entries:
            raise ConfigurationError(
                f"scenario {sc.scenario_id}: the dataset cache wrote no entry"
            )
        target = entries[0]
        checkpoint_bytes = target.stat().st_size
        if sc.damage == DAMAGE_TRUNCATE:
            truncate_file(target, keep_fraction=0.5)
        else:
            corrupt_file(target, n_bytes=64, seed=_damage_seed(sc.scenario_id))

        start = time.perf_counter()
        recovered = cached_load_dataset("mnist", **params)
        elapsed = time.perf_counter() - start
        identical = (
            np.array_equal(recovered.train_images, pristine.train_images)
            and np.array_equal(recovered.train_labels, pristine.train_labels)
            and np.array_equal(recovered.test_images, pristine.test_images)
            and np.array_equal(recovered.test_labels, pristine.test_labels)
        )
        return ScenarioOutcome(
            scenario=sc,
            outcome=OUTCOME_RESUMED if identical else OUTCOME_UNRECOVERED,
            bit_identical=identical,
            expected_exact=True,
            checkpoint_bytes=checkpoint_bytes,
            detail=(
                "damaged cache entry regenerated bit-identically"
                if identical
                else "regenerated cache entry diverged from the original"
            ),
            recovery_seconds=elapsed,
        )
