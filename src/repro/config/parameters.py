"""Validated parameter dataclasses for every subsystem of the simulator.

Each dataclass mirrors one block of the paper's experimental setup:

- :class:`LIFParameters` — the leaky integrate-and-fire model of eqs. (1)-(2)
  with the Section III-D constants as defaults.
- :class:`DeterministicSTDPParameters` — the conductance-dependent rule of
  eqs. (4)-(5).
- :class:`StochasticSTDPParameters` — the probabilistic rule of eqs. (6)-(7).
- :class:`QuantizationConfig` — fixed-point storage format plus rounding
  option (Section III-C).
- :class:`EncodingParameters` — pixel-intensity to spike-frequency mapping
  and the frequency-control window ``[f_min, f_max]`` (Fig. 1d).
- :class:`WTAParameters` — the Fig. 3 winner-take-all architecture.
- :class:`SimulationParameters` — time step, per-image presentation time and
  RNG seeding.
- :class:`ExperimentConfig` — one complete learning option (a Table I row).

All classes validate in ``__post_init__`` and raise
:class:`repro.errors.ConfigurationError` on inconsistent values, so invalid
configurations fail at construction time rather than deep inside a run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError


def _require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with *message* unless *condition*."""
    if not condition:
        raise ConfigurationError(message)


def _require_finite(value: float, name: str) -> None:
    _require(value == value and abs(value) != float("inf"), f"{name} must be finite, got {value!r}")


class STDPKind(enum.Enum):
    """Which synaptic learning rule drives conductance updates."""

    DETERMINISTIC = "deterministic"
    STOCHASTIC = "stochastic"


class RoundingMode(enum.Enum):
    """Rounding options for low-precision learning (Section III-C)."""

    TRUNCATE = "truncate"
    NEAREST = "nearest"
    STOCHASTIC = "stochastic"


@dataclass(frozen=True)
class LIFParameters:
    """Leaky integrate-and-fire neuron constants (eqs. 1-2).

    The membrane potential evolves as ``dv/dt = a + b*v + c*I`` and resets to
    ``v_reset`` when it crosses ``v_threshold``.  Defaults are the Section
    III-D values.  ``refractory_ms`` is the absolute refractory period after
    a spike during which the membrane is pinned at ``v_reset``.
    """

    a: float = -6.77
    b: float = -0.0989
    c: float = 0.314
    v_threshold: float = -60.2
    v_reset: float = -74.7
    v_init: float = -70.0
    refractory_ms: float = 2.0

    def __post_init__(self) -> None:
        for name in ("a", "b", "c", "v_threshold", "v_reset", "v_init", "refractory_ms"):
            _require_finite(float(getattr(self, name)), name)
        _require(self.v_reset < self.v_threshold, "v_reset must be below v_threshold")
        _require(self.v_init < self.v_threshold, "v_init must be below v_threshold")
        _require(self.b < 0.0, "b must be negative for a leaky (stable) membrane")
        _require(self.refractory_ms >= 0.0, "refractory_ms must be non-negative")

    @property
    def rest_potential(self) -> float:
        """Fixed point of the membrane ODE with zero input current."""
        return -self.a / self.b

    @property
    def membrane_tau_ms(self) -> float:
        """Membrane time constant ``1/|b|`` in milliseconds."""
        return 1.0 / abs(self.b)

    def rheobase_current(self) -> float:
        """Smallest constant current whose fixed point reaches threshold.

        Below this current the neuron never spikes; Fig. 1a's f-I curve is
        zero left of this value.
        """
        return (-self.b * self.v_threshold - self.a) / self.c


@dataclass(frozen=True)
class IzhikevichParameters:
    """Izhikevich neuron constants (alternative neuron model).

    The simulator "supports different neuron/synaptic models" (Section I);
    this is the standard two-variable quadratic model
    ``dv/dt = 0.04 v^2 + 5 v + 140 - u + I``, ``du/dt = a (b v - u)`` with
    reset ``v <- c_reset``, ``u <- u + d`` on threshold crossing.
    """

    a: float = 0.02
    b: float = 0.2
    c_reset: float = -65.0
    d: float = 8.0
    v_threshold: float = 30.0
    v_init: float = -65.0

    def __post_init__(self) -> None:
        for name in ("a", "b", "c_reset", "d", "v_threshold", "v_init"):
            _require_finite(float(getattr(self, name)), name)
        _require(self.a > 0.0, "a must be positive")
        _require(self.c_reset < self.v_threshold, "c_reset must be below v_threshold")


@dataclass(frozen=True)
class AdaptiveThresholdParameters:
    """Homeostatic adaptive threshold for WTA feature diversity.

    Each spike adds ``theta_plus`` to a per-neuron threshold offset which
    decays exponentially with time constant ``tau_ms``.  This is the standard
    mechanism (Diehl & Cook 2015, the paper's deterministic baseline [3])
    preventing a handful of neurons from winning every WTA round.
    """

    theta_plus: float = 0.05
    tau_ms: float = 5.0e4
    enabled: bool = True

    def __post_init__(self) -> None:
        _require_finite(self.theta_plus, "theta_plus")
        _require(self.theta_plus >= 0.0, "theta_plus must be non-negative")
        _require(self.tau_ms > 0.0, "tau_ms must be positive")


@dataclass(frozen=True)
class DeterministicSTDPParameters:
    """Conductance-dependent deterministic STDP (eqs. 4-5).

    Potentiation adds ``alpha_p * exp(-beta_p * (G - G_min)/(G_max - G_min))``
    and depression subtracts
    ``alpha_d * exp(-beta_d * (G_max - G)/(G_max - G_min))``.  ``window_ms``
    is the pairing window: a post-synaptic spike potentiates synapses whose
    pre-neuron fired within the window and depresses the rest (the Querlioz
    simplified-STDP schedule the rule comes from [4]).
    """

    alpha_p: float = 0.01
    beta_p: float = 3.0
    alpha_d: float = 0.005
    beta_d: float = 3.0
    g_max: float = 1.0
    g_min: float = 0.0
    #: Pairing window for the post-spike schedule.  Roughly the bright-pixel
    #: inter-spike interval at the 22 Hz operating point, so causally-driving
    #: afferents usually fall inside it.
    window_ms: float = 60.0

    def __post_init__(self) -> None:
        for name in ("alpha_p", "beta_p", "alpha_d", "beta_d", "g_max", "g_min", "window_ms"):
            _require_finite(float(getattr(self, name)), name)
        _require(self.alpha_p > 0.0, "alpha_p must be positive")
        _require(self.alpha_d > 0.0, "alpha_d must be positive")
        _require(self.beta_p >= 0.0, "beta_p must be non-negative")
        _require(self.beta_d >= 0.0, "beta_d must be non-negative")
        _require(self.g_max > self.g_min, "g_max must exceed g_min")
        _require(self.window_ms > 0.0, "window_ms must be positive")

    @property
    def g_range(self) -> float:
        return self.g_max - self.g_min


@dataclass(frozen=True)
class StochasticSTDPParameters:
    """Stochastic STDP probabilities (eqs. 6-7).

    ``P_pot = gamma_pot * exp(-dt / tau_pot)`` for a pre-then-post pair with
    time difference ``dt >= 0``; ``P_dep = gamma_dep * exp(dt / tau_dep)``
    for a post-then-pre pair with ``dt <= 0`` (the paper's Fig. 1b sign
    convention).  ``gamma``s cap the probability, ``tau``s set how sharply it
    decays with timing.  The *short-term* behaviour used for high-frequency
    learning corresponds to a larger ``tau_pot`` with reduced ``gamma``s
    (Table I row "high frequency").
    """

    gamma_pot: float = 0.9
    tau_pot_ms: float = 30.0
    gamma_dep: float = 0.9
    tau_dep_ms: float = 10.0
    #: Timescale of the post-event depression schedule ("probability is
    #: higher when Δt is larger").  Distinct from ``tau_dep_ms``: the pair
    #: form of eq. (7) measures the post-then-pre *coincidence* window
    #: (~10 ms, Table I), while the post-event complement measures how long
    #: an afferent has been silent, which lives on the input inter-spike
    #: timescale (hundreds of ms at f_min of a few Hz).
    tau_dep_post_ms: float = 300.0

    def __post_init__(self) -> None:
        for name in ("gamma_pot", "tau_pot_ms", "gamma_dep", "tau_dep_ms", "tau_dep_post_ms"):
            _require_finite(float(getattr(self, name)), name)
        _require(0.0 < self.gamma_pot <= 1.0, "gamma_pot must be in (0, 1]")
        _require(0.0 < self.gamma_dep <= 1.0, "gamma_dep must be in (0, 1]")
        _require(self.tau_pot_ms > 0.0, "tau_pot_ms must be positive")
        _require(self.tau_dep_ms > 0.0, "tau_dep_ms must be positive")
        _require(self.tau_dep_post_ms > 0.0, "tau_dep_post_ms must be positive")


@dataclass(frozen=True)
class QuantizationConfig:
    """Fixed-point storage format and rounding option (Section III-C).

    ``fmt`` is a Q-format string such as ``"Q1.7"`` (1 integer bit, 7
    fractional bits) or ``None`` for 32-bit floating point.  ``rounding``
    selects among bit truncation, round-to-nearest and stochastic rounding
    (eq. 8).  When the total bit width is 8 or below, the conductance change
    per STDP event is the fixed LSB ``1/2^n`` as prescribed by the paper.
    """

    fmt: Optional[str] = None
    rounding: RoundingMode = RoundingMode.NEAREST

    def __post_init__(self) -> None:
        if self.fmt is not None:
            # Validation of the format string itself is owned by
            # repro.quantization.qformat; here we only check shape cheaply to
            # avoid an import cycle.
            _require(
                isinstance(self.fmt, str) and self.fmt.upper().startswith("Q") and "." in self.fmt,
                f"fmt must look like 'Q1.7', got {self.fmt!r}",
            )
        _require(isinstance(self.rounding, RoundingMode), "rounding must be a RoundingMode")

    @property
    def is_floating_point(self) -> bool:
        return self.fmt is None


@dataclass(frozen=True)
class EncodingParameters:
    """Pixel-to-spike-train encoding and frequency control (Fig. 1d).

    Pixel intensity (0-255) maps linearly onto spike frequency in
    ``[f_min_hz, f_max_hz]``.  The paper states both that frequency is
    "proportional to the pixel intensity" and that "for darker pixels, the
    spiking frequency is higher"; for white-on-black digit images these
    coincide (bright stroke = high drive).  ``invert`` flips the polarity for
    black-on-white material.  ``kind`` chooses Poisson or strictly periodic
    spike trains.
    """

    f_min_hz: float = 1.0
    f_max_hz: float = 22.0
    invert: bool = False
    kind: str = "poisson"
    intensity_levels: int = 256

    def __post_init__(self) -> None:
        _require_finite(self.f_min_hz, "f_min_hz")
        _require_finite(self.f_max_hz, "f_max_hz")
        _require(self.f_min_hz >= 0.0, "f_min_hz must be non-negative")
        _require(self.f_max_hz > self.f_min_hz, "f_max_hz must exceed f_min_hz")
        _require(self.kind in ("poisson", "periodic"), f"kind must be 'poisson' or 'periodic', got {self.kind!r}")
        _require(self.intensity_levels >= 2, "intensity_levels must be at least 2")

    def with_frequency_range(self, f_min_hz: float, f_max_hz: float) -> "EncodingParameters":
        """Return a copy with a new frequency window (frequency-control module)."""
        return EncodingParameters(
            f_min_hz=f_min_hz,
            f_max_hz=f_max_hz,
            invert=self.invert,
            kind=self.kind,
            intensity_levels=self.intensity_levels,
        )


@dataclass(frozen=True)
class WTAParameters:
    """The Fig. 3 two-layer winner-take-all architecture.

    ``n_neurons`` first-layer LIF neurons receive all-to-all plastic synapses
    from the input spike trains.  When one spikes, its second-layer partner
    inhibits every *other* first-layer neuron for ``t_inh_ms``.
    ``input_spike_amplitude`` is the voltage carried by one input spike
    (``v_pre`` in eq. 3); ``current_tau_ms`` optionally low-pass filters the
    summed synaptic current (0 disables filtering).
    """

    n_neurons: int = 100
    t_inh_ms: float = 50.0
    #: Per-spike drive at the 256-pixel calibration size.  Deliberately low:
    #: neurons should integrate tens of milliseconds of input before their
    #: first spike so the WTA race resolves weight alignment rather than
    #: Poisson noise (see DESIGN.md).
    input_spike_amplitude: float = 0.3
    current_tau_ms: float = 60.0
    #: Negative current injected into inhibited neurons.  Positive values
    #: give graded (subtractive) competition; 0 or below silences losers
    #: outright (hard WTA).
    inhibition_strength: float = 8.0
    #: Resolve same-step threshold-crossing ties to a single winner (the
    #: neuron with the largest drive), honouring the paper's "preventing
    #: more than one neuron to learn one specific pattern".
    single_winner: bool = True
    #: Synaptic transmission model: ``"current"`` injects eq. (3)'s weighted
    #: sum directly; ``"conductance"`` scales it by the driving force
    #: ``(E_exc - v)/(E_exc - v_reset)`` (voltage-dependent synapses, the
    #: second synaptic model the simulator supports).
    synapse_model: str = "current"
    #: Excitatory reversal potential for the conductance model, mV.
    e_excitatory: float = 0.0
    g_init_low: float = 0.2
    g_init_high: float = 0.6
    adaptive_threshold: AdaptiveThresholdParameters = field(default_factory=AdaptiveThresholdParameters)

    def __post_init__(self) -> None:
        _require(self.n_neurons >= 1, "n_neurons must be at least 1")
        _require(self.t_inh_ms >= 0.0, "t_inh_ms must be non-negative")
        _require(self.input_spike_amplitude > 0.0, "input_spike_amplitude must be positive")
        _require_finite(self.inhibition_strength, "inhibition_strength")
        _require(self.current_tau_ms >= 0.0, "current_tau_ms must be non-negative")
        _require(
            self.synapse_model in ("current", "conductance"),
            f"synapse_model must be 'current' or 'conductance', got {self.synapse_model!r}",
        )
        _require_finite(self.e_excitatory, "e_excitatory")
        _require(
            0.0 <= self.g_init_low <= self.g_init_high,
            "g_init_low must be in [0, g_init_high]",
        )


@dataclass(frozen=True)
class SimulationParameters:
    """Time discretisation and per-image schedule.

    ``dt_ms`` is the integration step.  Each training image is presented for
    ``t_learn_ms`` (500 ms in the paper's baseline, 100 ms in high-frequency
    mode) followed by ``t_rest_ms`` of silence that lets membranes and spike
    timers relax between images.
    """

    dt_ms: float = 1.0
    t_learn_ms: float = 500.0
    t_rest_ms: float = 20.0
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.dt_ms > 0.0, "dt_ms must be positive")
        _require(self.t_learn_ms > 0.0, "t_learn_ms must be positive")
        _require(self.t_rest_ms >= 0.0, "t_rest_ms must be non-negative")
        _require(self.t_learn_ms >= self.dt_ms, "t_learn_ms must cover at least one step")
        _require(int(self.seed) == self.seed, "seed must be an integer")

    @property
    def steps_per_image(self) -> int:
        return int(round(self.t_learn_ms / self.dt_ms))

    @property
    def rest_steps(self) -> int:
        return int(round(self.t_rest_ms / self.dt_ms))


@dataclass(frozen=True)
class EngineConfig:
    """Which presentation engines drive training and evaluation.

    Names resolve through :mod:`repro.engine.registry`; unknown names fail
    here, at construction time, with the registered alternatives listed.
    The defaults select the fused kernel for both phases — **bit-identical**
    to the reference loop under the config's seeds (the registry's declared
    and test-pinned contract) at several times the throughput.  Select
    ``"reference"`` to run the oracle loop itself, ``"event"`` for the
    sparse/jumping training tier, or ``"batched"`` for image-parallel
    (statistically equivalent) evaluation.

    ``backend`` names the array backend the engines execute on (``"numpy"``,
    ``"guard"``, ``"cupy"``); ``None`` keeps the process-level selection
    (:func:`repro.backend.set_backend` / ``REPRO_BACKEND``).  The name must
    be one the backend layer knows *and* both selected engines declare —
    cross-checked here so a GPU run fails at config time, not mid-epoch.
    Results are backend-independent bit for bit (the kernels draw all
    randomness host-side); availability of ``"cupy"`` itself is still
    probed lazily at first array allocation.
    """

    train: str = "fused"
    eval: str = "fused"
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        # Function-level import: the registry is import-light (lazy engine
        # factories), but keeping it out of module scope makes the config
        # layer's import graph independent of the engine package.
        from repro.engine.registry import get_engine_spec

        _require(
            get_engine_spec(self.train).supports_learning,
            f"engine {self.train!r} does not support learning and cannot "
            f"be the training engine",
        )
        get_engine_spec(self.eval)
        if self.backend is not None:
            from repro.backend import KNOWN_BACKENDS

            _require(
                self.backend in KNOWN_BACKENDS,
                f"unknown array backend {self.backend!r}; choose from "
                f"{KNOWN_BACKENDS}",
            )
            for phase in ("train", "eval"):
                name = getattr(self, phase)
                spec = get_engine_spec(name)
                _require(
                    self.backend in spec.backends,
                    f"engine {name!r} ({phase}) does not execute on the "
                    f"{self.backend!r} backend (declared: "
                    f"{', '.join(spec.backends)})",
                )


@dataclass(frozen=True)
class ExperimentConfig:
    """One complete learning option — effectively a row of Table I.

    Aggregates every subsystem's parameters plus which STDP rule is active.
    ``name`` is a human-readable tag used in reports.
    """

    name: str = "float32-stochastic"
    stdp_kind: STDPKind = STDPKind.STOCHASTIC
    lif: LIFParameters = field(default_factory=LIFParameters)
    deterministic_stdp: DeterministicSTDPParameters = field(default_factory=DeterministicSTDPParameters)
    stochastic_stdp: StochasticSTDPParameters = field(default_factory=StochasticSTDPParameters)
    quantization: QuantizationConfig = field(default_factory=QuantizationConfig)
    encoding: EncodingParameters = field(default_factory=EncodingParameters)
    wta: WTAParameters = field(default_factory=WTAParameters)
    simulation: SimulationParameters = field(default_factory=SimulationParameters)
    engine: EngineConfig = field(default_factory=EngineConfig)

    def __post_init__(self) -> None:
        _require(isinstance(self.stdp_kind, STDPKind), "stdp_kind must be an STDPKind")
        _require(bool(self.name), "name must be non-empty")
        _require(
            isinstance(self.engine, EngineConfig), "engine must be an EngineConfig"
        )
        self._validate_engine_precisions()

    def _validate_engine_precisions(self) -> None:
        """Cross-check engine precision declarations against the quantization.

        Engines whose :class:`~repro.engine.registry.EngineSpec` declares
        only integer storage dtypes (no ``"float64"``) hold conductances as
        Q-format codes, so the config must select a fixed-point format that
        fits the widest declared dtype.  Checked here — at construction —
        rather than when the engine is instantiated mid-run.
        """
        from repro.engine.registry import get_engine_spec

        for phase in ("train", "eval"):
            engine_name = getattr(self.engine, phase)
            spec = get_engine_spec(engine_name)
            if "float64" in spec.precisions:
                continue
            codes = "/".join(spec.precisions)
            if self.quantization.fmt is None:
                raise ConfigurationError(
                    f"engine {engine_name!r} ({phase}) stores conductances as "
                    f"integer codes ({codes}) and requires a fixed-point "
                    f"quantization.fmt (e.g. fmt='Q1.7'); floating point needs "
                    f"a float64-capable engine such as 'fused'"
                )
            import numpy as np

            from repro.quantization.qformat import parse_qformat

            fmt = parse_qformat(self.quantization.fmt)
            max_bits = max(np.dtype(p).itemsize for p in spec.precisions) * 8
            _require(
                fmt.total_bits <= max_bits,
                f"engine {engine_name!r} ({phase}) stores codes in at most "
                f"{max_bits} bits ({codes}), but quantization.fmt={fmt} is "
                f"{fmt.total_bits} bits wide",
            )

    def describe(self) -> str:
        """One-line summary used by progress reporting and bench tables."""
        precision = self.quantization.fmt or "float32"
        return (
            f"{self.name}: {self.stdp_kind.value} STDP, {precision} "
            f"({self.quantization.rounding.value}), "
            f"{self.encoding.f_min_hz:g}-{self.encoding.f_max_hz:g} Hz, "
            f"{self.simulation.t_learn_ms:g} ms/image, "
            f"{self.wta.n_neurons} neurons"
        )
