"""Named learning options from Table I of the paper.

Table I specifies, per learning option, the deterministic-STDP magnitudes
(``alpha/beta/G`` — only for the 16-bit and high-frequency rows; lower
precisions use the fixed ``1/2^n`` LSB update), the stochastic-STDP
probability constants (``gamma/tau``) and the input frequency window.

The Q-format attached to each bit width follows Table II: 2-bit -> ``Q0.2``,
4-bit -> ``Q0.4``, 8-bit -> ``Q1.7``, 16-bit -> ``Q1.15``.

``get_preset`` returns a fully-populated :class:`ExperimentConfig`;
``baseline_preset`` builds the deterministic floating-point configuration the
paper calls *baseline* (Section IV-A, 92.2 % on MNIST) and
``high_frequency_preset`` the 5-78 Hz fast-learning mode (100 ms/image).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.config.parameters import (
    AdaptiveThresholdParameters,
    DeterministicSTDPParameters,
    EncodingParameters,
    ExperimentConfig,
    LIFParameters,
    QuantizationConfig,
    RoundingMode,
    SimulationParameters,
    STDPKind,
    StochasticSTDPParameters,
    WTAParameters,
)
from repro.errors import ConfigurationError

#: Section III-D LIF constants, shared by every learning option.
PAPER_LIF = LIFParameters(
    a=-6.77,
    b=-0.0989,
    c=0.314,
    v_threshold=-60.2,
    v_reset=-74.7,
    v_init=-70.0,
)

#: Table I stochastic-STDP constants per learning option:
#: (gamma_pot, tau_pot_ms, gamma_dep, tau_dep_ms, f_max_hz, f_min_hz)
_TABLE_I_STOCHASTIC: Dict[str, Tuple[float, float, float, float, float, float]] = {
    "2bit": (0.2, 20.0, 0.2, 10.0, 22.0, 1.0),
    "4bit": (0.3, 30.0, 0.3, 10.0, 22.0, 1.0),
    "8bit": (0.5, 30.0, 0.5, 10.0, 22.0, 1.0),
    "16bit": (0.9, 30.0, 0.9, 10.0, 22.0, 1.0),
    # Section IV-C: "higher gamma_pot and lower gamma_dep values ... are used
    # to create a short-term stochastic STDP behavior".  The machine-parsed
    # Table I row reads gamma_pot = 0.3, which contradicts that sentence and
    # fails to learn at this scale; we follow the text (gamma_pot high,
    # gamma_dep low, long tau_pot) — see DESIGN.md.
    "high_frequency": (0.9, 80.0, 0.2, 5.0, 78.0, 5.0),
}

#: Table I deterministic magnitudes for the rows that specify them.
_TABLE_I_DETERMINISTIC = DeterministicSTDPParameters(
    alpha_p=0.01,
    beta_p=3.0,
    alpha_d=0.005,
    beta_d=3.0,
    g_max=1.0,
    g_min=0.0,
)

#: Q-format per bit-width option (Table II precision labels).
_QFORMATS: Dict[str, Optional[str]] = {
    "2bit": "Q0.2",
    "4bit": "Q0.4",
    "8bit": "Q1.7",
    "16bit": "Q1.15",
    "high_frequency": None,
    "float32": None,
}

#: Presentation time per image, ms.  500 ms at 1-22 Hz; 100 ms at 5-78 Hz
#: (Section IV-C).
_T_LEARN: Dict[str, float] = {
    "2bit": 500.0,
    "4bit": 500.0,
    "8bit": 500.0,
    "16bit": 500.0,
    "float32": 500.0,
    "high_frequency": 100.0,
}


def available_presets() -> Tuple[str, ...]:
    """Names accepted by :func:`get_preset`."""
    return ("float32", "2bit", "4bit", "8bit", "16bit", "high_frequency")


def get_preset(
    name: str,
    stdp_kind: STDPKind = STDPKind.STOCHASTIC,
    rounding: RoundingMode = RoundingMode.STOCHASTIC,
    n_neurons: int = 100,
    seed: int = 0,
) -> ExperimentConfig:
    """Build the :class:`ExperimentConfig` for a Table I learning option.

    ``name`` is one of :func:`available_presets`.  ``stdp_kind`` selects the
    deterministic baseline or the paper's stochastic rule; ``rounding`` is
    only meaningful for fixed-point presets.  ``n_neurons`` scales the first
    layer (the paper uses 1000; tests and benches use less).
    """
    if name not in available_presets():
        raise ConfigurationError(
            f"unknown preset {name!r}; expected one of {available_presets()}"
        )

    stoch_key = name if name in _TABLE_I_STOCHASTIC else "16bit"
    g_pot, t_pot, g_dep, t_dep, f_max, f_min = _TABLE_I_STOCHASTIC[stoch_key]

    fmt = _QFORMATS[name]
    quant = QuantizationConfig(fmt=fmt, rounding=rounding)
    encoding = EncodingParameters(f_min_hz=f_min, f_max_hz=f_max)
    sim = SimulationParameters(t_learn_ms=_T_LEARN[name], seed=seed)

    wta = WTAParameters(n_neurons=n_neurons)
    if name == "high_frequency":
        # The 100 ms presentation needs proportionally faster WTA dynamics:
        # inhibition and current integration shrink with the presentation
        # time so the number of competition rounds per image is preserved,
        # and the homeostatic increment shrinks so the threshold offset
        # equilibrates at the same per-image firing rate (theta integrates
        # spikes per wall of simulated time, and high-frequency mode packs
        # 5x more images into it).
        wta = WTAParameters(
            n_neurons=n_neurons,
            t_inh_ms=15.0,
            current_tau_ms=20.0,
            adaptive_threshold=AdaptiveThresholdParameters(theta_plus=0.01, tau_ms=1.0e4),
        )

    return ExperimentConfig(
        name=f"{name}-{stdp_kind.value}",
        stdp_kind=stdp_kind,
        lif=PAPER_LIF,
        deterministic_stdp=_TABLE_I_DETERMINISTIC,
        stochastic_stdp=StochasticSTDPParameters(
            gamma_pot=g_pot,
            tau_pot_ms=t_pot,
            gamma_dep=g_dep,
            tau_dep_ms=t_dep,
        ),
        quantization=quant,
        encoding=encoding,
        wta=wta,
        simulation=sim,
    )


def baseline_preset(n_neurons: int = 100, seed: int = 0) -> ExperimentConfig:
    """Deterministic floating-point baseline (Section IV-A, Diehl-comparable)."""
    return get_preset("float32", stdp_kind=STDPKind.DETERMINISTIC, n_neurons=n_neurons, seed=seed)


def high_frequency_preset(
    stdp_kind: STDPKind = STDPKind.STOCHASTIC, n_neurons: int = 100, seed: int = 0
) -> ExperimentConfig:
    """Fast-learning mode: 5-78 Hz input, 100 ms per image (Section IV-C)."""
    return get_preset("high_frequency", stdp_kind=stdp_kind, n_neurons=n_neurons, seed=seed)


def table_i_rows() -> Dict[str, Dict[str, float]]:
    """The raw Table I constants, for report generation and documentation."""
    rows: Dict[str, Dict[str, float]] = {}
    for key, (g_pot, t_pot, g_dep, t_dep, f_max, f_min) in _TABLE_I_STOCHASTIC.items():
        row: Dict[str, float] = {
            "gamma_pot": g_pot,
            "tau_pot_ms": t_pot,
            "gamma_dep": g_dep,
            "tau_dep_ms": t_dep,
            "f_max_hz": f_max,
            "f_min_hz": f_min,
        }
        if key in ("16bit", "high_frequency"):
            row.update(
                alpha_p=_TABLE_I_DETERMINISTIC.alpha_p,
                beta_p=_TABLE_I_DETERMINISTIC.beta_p,
                alpha_d=_TABLE_I_DETERMINISTIC.alpha_d,
                beta_d=_TABLE_I_DETERMINISTIC.beta_d,
                g_max=_TABLE_I_DETERMINISTIC.g_max,
                g_min=_TABLE_I_DETERMINISTIC.g_min,
            )
        rows[key] = row
    return rows
