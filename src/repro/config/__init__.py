"""Configuration objects and Table I presets for ParallelSpikeSim.

The public surface of this package:

- :mod:`repro.config.parameters` — validated dataclasses for every tunable
  part of the simulator (neuron model, STDP rules, quantisation, input
  encoding, network architecture, simulation schedule).
- :mod:`repro.config.presets` — the named learning options of Table I of the
  paper (``"2bit"``, ``"4bit"``, ``"8bit"``, ``"16bit"``,
  ``"high_frequency"``) plus the floating-point baseline rows.
- :mod:`repro.config.serialize` — round-trip of any config to/from plain
  dictionaries and JSON.
"""

from repro.config.parameters import (
    AdaptiveThresholdParameters,
    DeterministicSTDPParameters,
    EncodingParameters,
    EngineConfig,
    ExperimentConfig,
    IzhikevichParameters,
    LIFParameters,
    QuantizationConfig,
    RoundingMode,
    SimulationParameters,
    StochasticSTDPParameters,
    STDPKind,
    WTAParameters,
)
from repro.config.presets import (
    PAPER_LIF,
    available_presets,
    baseline_preset,
    get_preset,
    high_frequency_preset,
)
from repro.config.serialize import config_from_dict, config_to_dict, load_json, save_json

__all__ = [
    "AdaptiveThresholdParameters",
    "DeterministicSTDPParameters",
    "EncodingParameters",
    "EngineConfig",
    "ExperimentConfig",
    "IzhikevichParameters",
    "LIFParameters",
    "QuantizationConfig",
    "RoundingMode",
    "SimulationParameters",
    "StochasticSTDPParameters",
    "STDPKind",
    "WTAParameters",
    "PAPER_LIF",
    "available_presets",
    "baseline_preset",
    "get_preset",
    "high_frequency_preset",
    "config_from_dict",
    "config_to_dict",
    "load_json",
    "save_json",
]
