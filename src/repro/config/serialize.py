"""Round-trip configuration objects to plain dictionaries and JSON files.

``config_to_dict`` turns any of the :mod:`repro.config.parameters`
dataclasses (including the aggregate :class:`ExperimentConfig`) into a plain
nested dictionary of JSON-compatible values; ``config_from_dict`` inverts it.
Enum members serialise as their ``value`` string.  Each serialised dictionary
carries a ``"__type__"`` key naming the dataclass so that ``from_dict`` can
reconstruct nested structures without guessing.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from pathlib import Path
from typing import Any, Dict, Type, Union

from repro.config import parameters as _p
from repro.errors import ConfigurationError

#: Dataclasses eligible for (de)serialisation, by class name.
_REGISTRY: Dict[str, type] = {
    cls.__name__: cls
    for cls in (
        _p.LIFParameters,
        _p.IzhikevichParameters,
        _p.AdaptiveThresholdParameters,
        _p.DeterministicSTDPParameters,
        _p.StochasticSTDPParameters,
        _p.QuantizationConfig,
        _p.EncodingParameters,
        _p.WTAParameters,
        _p.SimulationParameters,
        _p.EngineConfig,
        _p.ExperimentConfig,
    )
}

#: Enum types appearing as dataclass fields, by class name.
_ENUMS: Dict[str, Type[enum.Enum]] = {
    "STDPKind": _p.STDPKind,
    "RoundingMode": _p.RoundingMode,
}


def config_to_dict(config: Any) -> Dict[str, Any]:
    """Serialise a config dataclass into a plain nested dictionary."""
    if type(config).__name__ not in _REGISTRY:
        raise ConfigurationError(f"cannot serialise object of type {type(config).__name__}")
    out: Dict[str, Any] = {"__type__": type(config).__name__}
    for f in dataclasses.fields(config):
        value = getattr(config, f.name)
        if dataclasses.is_dataclass(value):
            out[f.name] = config_to_dict(value)
        elif isinstance(value, enum.Enum):
            out[f.name] = {"__enum__": type(value).__name__, "value": value.value}
        else:
            out[f.name] = value
    return out


def config_from_dict(data: Dict[str, Any]) -> Any:
    """Reconstruct a config dataclass serialised by :func:`config_to_dict`."""
    if not isinstance(data, dict) or "__type__" not in data:
        raise ConfigurationError("serialised config must be a dict with a '__type__' key")
    type_name = data["__type__"]
    cls = _REGISTRY.get(type_name)
    if cls is None:
        raise ConfigurationError(f"unknown config type {type_name!r}")
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        if key == "__type__":
            continue
        if isinstance(value, dict) and "__type__" in value:
            kwargs[key] = config_from_dict(value)
        elif isinstance(value, dict) and "__enum__" in value:
            enum_cls = _ENUMS.get(value["__enum__"])
            if enum_cls is None:
                raise ConfigurationError(f"unknown enum type {value['__enum__']!r}")
            kwargs[key] = enum_cls(value["value"])
        else:
            kwargs[key] = value
    return cls(**kwargs)


def save_json(config: Any, path: Union[str, Path]) -> None:
    """Write a config dataclass to *path* as indented JSON."""
    payload = config_to_dict(config)
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_json(path: Union[str, Path]) -> Any:
    """Load a config dataclass previously written by :func:`save_json`."""
    text = Path(path).read_text()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"invalid JSON in {path}: {exc}") from exc
    return config_from_dict(payload)
