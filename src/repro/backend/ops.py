"""Backend operation handles: the seam between engines and array modules.

An :class:`Ops` bundles everything a kernel needs to be backend-generic:
the array module ``xp`` it should express its math against, and the two
explicit transfer directions.  Engines obtain one from
:func:`repro.backend.backend_ops` at construction time and route *all*
array creation/conversion and host↔device movement through it; plain
``numpy`` remains legal only for host-side state (checkpoints, logs,
label maps), which is exactly what lint rule R6 enforces.

On the ``numpy`` backend both transfer directions are identity functions
returning the *same* object — host engines bind live network arrays with
zero copies, which is what keeps the host path bit-identical to the
pre-refactor kernels by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConfigurationError


def _identity(array: Any) -> Any:
    return array


@dataclass(frozen=True)
class Ops:
    """Array-module handle plus explicit transfer seams for one backend."""

    #: Canonical backend name ("numpy", "guard", "cupy").
    name: str
    #: The array module kernels express math against.
    xp: Any
    #: True when device memory *is* host memory (transfers are identity).
    is_host: bool
    _to_device: Callable[[Any], Any] = field(repr=False)
    _to_host: Callable[[Any], Any] = field(repr=False)

    def to_device(self, array: Any) -> Any:
        """Upload a host array to this backend's device memory."""
        return self._to_device(array)

    def to_host(self, array: Any) -> Any:
        """Download a device array to a plain host ``numpy.ndarray``."""
        return self._to_host(array)


def build_ops(name: str, module: Any) -> Ops:
    """Construct the :class:`Ops` for a resolved backend module."""
    if name == "numpy":
        return Ops(
            name=name, xp=module, is_host=True,
            _to_device=_identity, _to_host=_identity,
        )
    if name == "guard":
        return Ops(
            name=name, xp=module, is_host=False,
            _to_device=module.to_device, _to_host=module.asnumpy,
        )
    if name == "cupy":  # pragma: no cover - requires a CUDA device
        return Ops(
            name=name, xp=module, is_host=False,
            _to_device=module.asarray, _to_host=module.asnumpy,
        )
    raise ConfigurationError(
        f"no ops construction recipe for backend {name!r}"
    )
