"""Guard backend: NumPy semantics with device-discipline enforcement.

This module is an always-available stand-in for a GPU array module.  It
computes everything with NumPy (so results are bit-identical to the
``numpy`` backend by construction) but tags every array it creates as
*device-resident* via the :class:`GuardArray` ndarray subclass and then:

* **raises** :class:`~repro.errors.BackendError` when an operation mixes a
  device array with a plain host array — the bug class that silently works
  on NumPy, crashes on CuPy, and otherwise needs a GPU in CI to catch;
* **counts** allocations and host↔device transfers so benchmarks and tests
  can assert that a kernel's steady-state loop is transfer-free.

The accounting model mirrors CuPy's implicit-transfer behaviour:

* creating a device array (``xp.empty`` … ``xp.linspace``) counts one
  allocation;
* converting a host ndarray (``xp.asarray(host)``, :func:`to_device`)
  counts one host→device transfer;
* indexing or scattering with a *host* index/value array counts one
  host→device transfer (CuPy uploads such operands implicitly — legal,
  but worth measuring);
* :func:`asnumpy` / ``Ops.to_host`` counts one device→host transfer;
* mixing a device array with a host array inside a ufunc or array
  function counts one violation and raises.

Scalar extraction (``float(x)``, ``x.item()``, reductions returning NumPy
scalars) is treated as a synchronisation point, not a counted transfer —
the counters track *array* movement, which is what dominates PCIe cost.

Known blind spots, accepted by design and covered by lint rule R6 plus
the explicit ``Ops`` seams instead: ``np.asarray(device_array)`` called
through the *plain* ``numpy`` namespace strips the guard silently (NumPy's
``asarray`` does not dispatch ``__array_function__`` for subclasses), and
``host_array[device_mask]`` dispatches on the host operand.  Kernel code
must therefore route array creation/conversion through ``xp``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

import numpy as _np

from repro.errors import BackendError

#: Canonical short name reported by ``repro.backend.backend_name()``.
__backend_name__ = "guard"


@dataclass
class TransferStats:
    """Counters accumulated by the guard backend since the last reset."""

    h2d: int = 0
    d2h: int = 0
    allocations: int = 0
    violations: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "h2d": self.h2d,
            "d2h": self.d2h,
            "allocations": self.allocations,
            "violations": self.violations,
        }


_STATS = TransferStats()


def transfer_stats() -> TransferStats:
    """Return a snapshot of the counters (detached from the live state)."""
    return TransferStats(
        h2d=_STATS.h2d,
        d2h=_STATS.d2h,
        allocations=_STATS.allocations,
        violations=_STATS.violations,
    )


def reset_counters() -> None:
    """Zero all guard counters."""
    _STATS.h2d = 0
    _STATS.d2h = 0
    _STATS.allocations = 0
    _STATS.violations = 0


def _violation(context: str, value: Any) -> BackendError:
    _STATS.violations += 1
    shape = getattr(value, "shape", None)
    return BackendError(
        f"implicit host/device mixing in {context!r}: a plain host numpy "
        f"array (shape {shape}) met a guard-device array; upload it "
        "explicitly with Ops.to_device / xp.asarray, or download the "
        "device operand with Ops.to_host / repro.backend.asnumpy"
    )


def _is_host_array(value: Any) -> bool:
    """True for a plain (non-guard) ndarray with at least one dimension.

    Zero-dimensional host arrays and NumPy scalars are allowed to mix —
    CuPy broadcasts those from the host without a kernel-visible upload,
    and treating them as violations would outlaw ``x * np.float64(2.0)``.
    """
    return (
        isinstance(value, _np.ndarray)
        and not isinstance(value, GuardArray)
        and value.ndim > 0
    )


def _check_tree(value: Any, context: str) -> None:
    if _is_host_array(value):
        raise _violation(context, value)
    if isinstance(value, (tuple, list)):
        for item in value:
            _check_tree(item, context)
    elif isinstance(value, dict):
        for item in value.values():
            _check_tree(item, context)


def _unwrap(value: Any) -> Any:
    if isinstance(value, GuardArray):
        return value.view(_np.ndarray)
    if isinstance(value, tuple):
        return tuple(_unwrap(item) for item in value)
    if isinstance(value, list):
        return [_unwrap(item) for item in value]
    if isinstance(value, dict):
        return {key: _unwrap(item) for key, item in value.items()}
    return value


def _wrap(value: Any) -> Any:
    if isinstance(value, _np.ndarray) and not isinstance(value, GuardArray):
        return value.view(GuardArray)
    if isinstance(value, tuple):
        return tuple(_wrap(item) for item in value)
    return value


class GuardArray(_np.ndarray):
    """A NumPy array posing as device memory.

    Participates in all NumPy operations via the ufunc/array-function
    protocols; every operation first checks that no plain host array is
    mixed in, then computes on the underlying base class and re-wraps
    ndarray results so device residency is sticky.
    """

    __slots__ = ()

    def __array_ufunc__(
        self, ufunc: Any, method: str, *inputs: Any, **kwargs: Any
    ) -> Any:
        context = f"{ufunc.__name__}.{method}" if method != "__call__" else ufunc.__name__
        out = kwargs.get("out", ())
        if not isinstance(out, tuple):
            out = (out,)
        for operand in (*inputs, *out):
            if _is_host_array(operand):
                raise _violation(context, operand)
        where = kwargs.get("where", True)
        if where is not True:
            if _is_host_array(where):
                raise _violation(context, where)
            kwargs["where"] = _unwrap(where)
        if out and out[0] is not None:
            kwargs["out"] = tuple(_unwrap(item) for item in out)
        result = getattr(ufunc, method)(*(_unwrap(item) for item in inputs), **kwargs)
        if out and out[0] is not None:
            return out[0] if len(out) == 1 else out
        return _wrap(result)

    def __array_function__(
        self, func: Any, types: Any, args: Any, kwargs: Any
    ) -> Any:
        context = getattr(func, "__name__", str(func))
        _check_tree(args, context)
        _check_tree(kwargs, context)
        return _wrap(func(*_unwrap(args), **_unwrap(kwargs)))

    def __getitem__(self, key: Any) -> Any:
        _count_host_operands(key)
        return super().__getitem__(_unwrap(key))

    def __setitem__(self, key: Any, value: Any) -> None:
        _count_host_operands(key)
        if _is_host_array(value):
            # CuPy uploads a host value array implicitly: legal, counted.
            _STATS.h2d += 1
        super().__setitem__(_unwrap(key), _unwrap(value))


def _count_host_operands(key: Any) -> None:
    """Count host index arrays used against a device array as uploads."""
    items: Tuple[Any, ...] = key if isinstance(key, tuple) else (key,)
    for item in items:
        if _is_host_array(item):
            _STATS.h2d += 1


def asnumpy(array: Any) -> _np.ndarray:
    """Download a device array to the host (counted), copying it.

    Host inputs pass through ``numpy.asarray`` uncounted, mirroring
    ``cupy.asnumpy`` semantics.
    """
    if isinstance(array, GuardArray):
        _STATS.d2h += 1
        return _np.array(array.view(_np.ndarray))
    return _np.asarray(array)


def to_device(array: Any) -> GuardArray:
    """Upload a host array (counted), returning a detached device copy."""
    if isinstance(array, GuardArray):
        return array
    host = _np.asarray(array)
    _STATS.h2d += 1
    return _np.array(host).view(GuardArray)


#: Array-creation functions: count one device allocation each.
_CREATION_FNS = frozenset(
    {
        "empty",
        "zeros",
        "ones",
        "full",
        "empty_like",
        "zeros_like",
        "ones_like",
        "full_like",
        "arange",
        "linspace",
        "eye",
        "identity",
        "fromiter",
    }
)

#: Conversion functions: host ndarray input counts an upload instead.
_CONVERSION_FNS = frozenset(
    {"asarray", "array", "ascontiguousarray", "asfortranarray"}
)


def _make_creation(name: str) -> Any:
    fn = getattr(_np, name)

    def creation(*args: Any, **kwargs: Any) -> Any:
        _STATS.allocations += 1
        return _wrap(fn(*_unwrap(args), **_unwrap(kwargs)))

    creation.__name__ = name
    creation.__qualname__ = name
    return creation


def _make_conversion(name: str) -> Any:
    fn = getattr(_np, name)

    def conversion(obj: Any, *args: Any, **kwargs: Any) -> Any:
        if isinstance(obj, GuardArray):
            # Already on device; numpy.asarray would strip the subclass
            # silently, so re-wrap the result explicitly.
            return _wrap(fn(obj.view(_np.ndarray), *args, **kwargs))
        if _is_host_array(obj):
            _STATS.h2d += 1
        else:
            _STATS.allocations += 1
        return _wrap(fn(obj, *args, **kwargs))

    conversion.__name__ = name
    conversion.__qualname__ = name
    return conversion


def __getattr__(name: str) -> Any:
    """Expose the full NumPy namespace with guarded creation/conversion.

    Everything else is returned raw: ufuncs and array functions applied to
    :class:`GuardArray` operands dispatch through the override protocols
    anyway, so the checks still run; dtypes and scalar types need no
    wrapping at all.
    """
    if name in _CREATION_FNS:
        wrapped = _make_creation(name)
    elif name in _CONVERSION_FNS:
        wrapped = _make_conversion(name)
    else:
        try:
            wrapped = getattr(_np, name)
        except AttributeError:
            raise AttributeError(
                f"module {__name__!r} has no attribute {name!r}"
            ) from None
    globals()[name] = wrapped  # cache for subsequent lookups
    return wrapped
