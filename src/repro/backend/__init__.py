"""Array-module selection: the multi-backend axis of the roadmap.

The paper's implementation targets CUDA directly; this reproduction keeps
every kernel expressed as array operations so the *same code* can execute on
any module exposing the NumPy API.  :func:`get_array_module` is the single
switch the data-parallel engines (:mod:`repro.engine.fused`,
:mod:`repro.engine.batched`) route their allocations and bulk operations
through:

- ``"numpy"`` (default) — always available, runs everywhere;
- ``"cupy"`` — used when CuPy is importable and a CUDA device is present,
  giving the batched/fused kernels a GPU execution path without code
  changes.

Selection order: an explicit :func:`set_backend` call wins, then the
``REPRO_BACKEND`` environment variable, then the numpy default.  Unknown or
unavailable backends raise :class:`~repro.errors.ConfigurationError` rather
than silently falling back, so a run that *believes* it is on the GPU
actually is.

Helpers:

- :func:`asnumpy` — move an array back to host memory regardless of origin
  (the identity for numpy arrays);
- :func:`backend_name` — the name of the module :func:`get_array_module`
  currently resolves to (for logs and benchmark metadata).
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy

from repro.errors import ConfigurationError

__all__ = [
    "available_backends",
    "asnumpy",
    "backend_name",
    "get_array_module",
    "set_backend",
]

#: Environment variable consulted when no backend was set programmatically.
ENV_VAR = "REPRO_BACKEND"

#: Explicit programmatic selection (None = fall through to env / default).
_selected: Optional[str] = None

#: Cache of successfully imported backend modules, keyed by name.
_modules = {"numpy": numpy}

#: Cached CuPy probe failure (message), or None when CuPy has not been
#: probed yet / imported fine.  Without it every ``available_backends()``
#: call — the CLI renders the capability table on each invocation — would
#: re-pay the failed import machinery (path scans, ImportError raising).
_cupy_unavailable: Optional[str] = None


def _import_cupy():
    """Import CuPy and verify a CUDA device answers; cache either outcome."""
    global _cupy_unavailable
    if "cupy" in _modules:
        return _modules["cupy"]
    if _cupy_unavailable is not None:
        raise ConfigurationError(_cupy_unavailable)
    try:
        import cupy  # noqa: F401 — optional dependency, never installed here

        cupy.cuda.runtime.getDeviceCount()
    except Exception as exc:  # lint-ok: R5 — any import failure means "unavailable"
        _cupy_unavailable = f"backend 'cupy' requested but unavailable: {exc!r}"
        raise ConfigurationError(_cupy_unavailable) from exc
    _modules["cupy"] = cupy
    return cupy


def _resolve(name: str):
    name = name.strip().lower()
    if name == "numpy":
        return _modules["numpy"]
    if name == "cupy":
        return _import_cupy()
    raise ConfigurationError(
        f"unknown array backend {name!r}; choose from ('numpy', 'cupy')"
    )


def available_backends() -> Tuple[str, ...]:
    """Backends that can actually be activated in this process."""
    names = ["numpy"]
    try:
        _import_cupy()
        names.append("cupy")
    except ConfigurationError:
        pass
    return tuple(names)


def set_backend(name: Optional[str]):
    """Select the array backend programmatically (``None`` clears the choice).

    Returns the resolved module so callers can do
    ``xp = set_backend("numpy")``.
    """
    global _selected
    if name is None:
        _selected = None
        return get_array_module()
    module = _resolve(name)  # validate before committing
    _selected = name.strip().lower()
    return module


def get_array_module():
    """The active array module: explicit choice > ``REPRO_BACKEND`` > numpy."""
    if _selected is not None:
        return _resolve(_selected)
    env = os.environ.get(ENV_VAR)
    if env:
        return _resolve(env)
    return _modules["numpy"]


def backend_name() -> str:
    """Name of the module :func:`get_array_module` currently resolves to.

    Derived from the resolved module itself rather than assuming "anything
    that is not numpy must be cupy" — a third backend registered in
    ``_modules`` reports its own name.
    """
    module = get_array_module()
    return str(module.__name__).partition(".")[0]


def asnumpy(array):
    """Return *array* as a host :class:`numpy.ndarray` (identity for numpy)."""
    module = type(array).__module__
    if module.startswith("cupy"):  # pragma: no cover - exercised only with CuPy
        return _modules["cupy"].asnumpy(array)
    return numpy.asarray(array)
