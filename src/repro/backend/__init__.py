"""Array-module selection: the multi-backend axis of the roadmap.

The paper's implementation targets CUDA directly; this reproduction keeps
every kernel expressed as array operations so the *same code* can execute on
any module exposing the NumPy API.  Engines obtain an :class:`Ops` handle
from :func:`backend_ops` — the array module ``xp`` plus explicit
``to_device`` / ``to_host`` transfer seams — and route their allocations and
bulk operations through it:

- ``"numpy"`` (default) — always available, runs everywhere; transfers are
  identity functions, so host engines bind live network arrays directly;
- ``"guard"`` — always available; NumPy semantics (bit-identical results)
  but every array is tagged device-resident, transfers/allocations are
  counted, and implicit host/device mixing raises
  :class:`~repro.errors.BackendError`.  This is the CI-testable stand-in
  for a GPU: the device-discipline contract holds on CPU-only runners;
- ``"cupy"`` — used when CuPy is importable and a CUDA device is present,
  giving the kernels a GPU execution path without code changes.

Selection order: an explicit :func:`set_backend` call wins, then the
``REPRO_BACKEND`` environment variable, then the numpy default.  Unknown or
unavailable backends raise :class:`~repro.errors.ConfigurationError` rather
than silently falling back, so a run that *believes* it is on the GPU
actually is.

Helpers:

- :func:`asnumpy` — move an array back to host memory regardless of origin,
  dispatched via the owning backend's own converter (identity for numpy);
- :func:`backend_name` — the name of the module :func:`get_array_module`
  currently resolves to (for logs and benchmark metadata);
- :func:`backend_ops` — the :class:`Ops` handle for the active (or a named)
  backend;
- :func:`use_backend` — context manager scoping a backend selection;
- :func:`reset_backend_cache` — forget probe results and cached modules so
  tests (or a newly hot-plugged driver stack) can re-probe.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Tuple

import numpy

from repro.backend.ops import Ops, build_ops
from repro.errors import ConfigurationError

__all__ = [
    "available_backends",
    "asnumpy",
    "coerce_float64",
    "backend_name",
    "backend_ops",
    "get_array_module",
    "reset_backend_cache",
    "set_backend",
    "use_backend",
    "Ops",
]

#: Environment variable consulted when no backend was set programmatically.
ENV_VAR = "REPRO_BACKEND"

#: Names this package knows how to resolve (availability still varies).
KNOWN_BACKENDS = ("numpy", "guard", "cupy")

#: Explicit programmatic selection (None = fall through to env / default).
_selected: Optional[str] = None

#: Cache of successfully imported backend modules, keyed by name.
_modules = {"numpy": numpy}

#: Cached CuPy probe failure (message), or None when CuPy has not been
#: probed yet / imported fine.  Without it every ``available_backends()``
#: call — the CLI renders the capability table on each invocation — would
#: re-pay the failed import machinery (path scans, ImportError raising).
#: :func:`reset_backend_cache` clears it so a process whose device stack
#: changed (or a test faking one) can re-probe.
_cupy_unavailable: Optional[str] = None

#: Cached Ops handles, keyed by backend name.
_ops_cache: Dict[str, Ops] = {}


def _import_guard():
    """Import the always-available guard backend (see :mod:`.guard`)."""
    if "guard" in _modules:
        return _modules["guard"]
    from repro.backend import guard

    _modules["guard"] = guard
    return guard


def _import_cupy():
    """Import CuPy and verify a CUDA device answers; cache either outcome."""
    global _cupy_unavailable
    if "cupy" in _modules:
        return _modules["cupy"]
    if _cupy_unavailable is not None:
        raise ConfigurationError(_cupy_unavailable)
    try:
        import cupy  # noqa: F401 — optional dependency, never installed here

        cupy.cuda.runtime.getDeviceCount()
    except Exception as exc:  # lint-ok: R5 — any import failure means "unavailable"
        _cupy_unavailable = f"backend 'cupy' requested but unavailable: {exc!r}"
        raise ConfigurationError(_cupy_unavailable) from exc
    _modules["cupy"] = cupy
    return cupy


def _resolve(name: str):
    name = name.strip().lower()
    if name == "numpy":
        return _modules["numpy"]
    if name == "guard":
        return _import_guard()
    if name == "cupy":
        return _import_cupy()
    raise ConfigurationError(
        f"unknown array backend {name!r}; choose from {KNOWN_BACKENDS}"
    )


def _active_name() -> str:
    """Normalised name of the active backend, validating env selections."""
    if _selected is not None:
        return _selected
    env = os.environ.get(ENV_VAR)
    if env:
        name = env.strip().lower()
        _resolve(name)  # unknown/unavailable env selections must not pass silently
        return name
    return "numpy"


def available_backends() -> Tuple[str, ...]:
    """Backends that can actually be activated in this process."""
    names = ["numpy", "guard"]
    try:
        _import_cupy()
        names.append("cupy")
    except ConfigurationError:
        pass
    return tuple(names)


def reset_backend_cache() -> None:
    """Forget probe results, cached modules and cached Ops handles.

    The failed-CuPy probe message is otherwise cached for the lifetime of
    the process; tests that install a fake ``cupy`` (or a machine whose
    driver stack just came up) call this to force a fresh probe.  The
    ``numpy`` entry is permanent — it is the fallback everything else is
    defined against.
    """
    global _cupy_unavailable
    _cupy_unavailable = None
    for name in list(_modules):
        if name != "numpy":
            del _modules[name]
    _ops_cache.clear()


def set_backend(name: Optional[str]):
    """Select the array backend programmatically (``None`` clears the choice).

    Returns the resolved module so callers can do
    ``xp = set_backend("numpy")``.
    """
    global _selected
    if name is None:
        _selected = None
        return get_array_module()
    module = _resolve(name)  # validate before committing
    _selected = name.strip().lower()
    return module


@contextmanager
def use_backend(name: Optional[str]) -> Iterator[object]:
    """Scope a programmatic backend selection to a ``with`` block.

    ``None`` is a no-op scope (the ambient selection stays active), which
    lets callers thread an optional config field straight through.
    """
    global _selected
    previous = _selected
    if name is not None:
        set_backend(name)
    try:
        yield get_array_module()
    finally:
        _selected = previous


def get_array_module():
    """The active array module: explicit choice > ``REPRO_BACKEND`` > numpy."""
    return _resolve(_active_name())


def backend_name() -> str:
    """Name of the module :func:`get_array_module` currently resolves to.

    Derived from the resolved module itself rather than assuming "anything
    that is not numpy must be cupy" — a module may carry an explicit
    ``__backend_name__`` (the guard backend does), otherwise the top-level
    module name is used.
    """
    module = get_array_module()
    explicit = getattr(module, "__backend_name__", None)
    if explicit is not None:
        return str(explicit)
    return str(module.__name__).partition(".")[0]


def backend_ops(name: Optional[str] = None) -> Ops:
    """The :class:`Ops` handle for *name* (default: the active backend)."""
    key = name.strip().lower() if name is not None else _active_name()
    ops = _ops_cache.get(key)
    if ops is None:
        module = _resolve(key)
        ops = build_ops(key, module)
        _ops_cache[key] = ops
    return ops


def asnumpy(array):
    """Return *array* as a host :class:`numpy.ndarray`.

    Dispatches via the owning backend's own converter — each non-numpy
    backend module declares the array type it owns and how to download it —
    rather than matching ``type(array).__module__`` strings.  The identity
    for plain numpy arrays.
    """
    guard = _import_guard()
    if isinstance(array, guard.GuardArray):
        return guard.asnumpy(array)
    cupy = _modules.get("cupy")
    if cupy is not None and isinstance(array, cupy.ndarray):  # pragma: no cover
        return cupy.asnumpy(array)
    # Only plain host arrays reach this line: every device-owning backend
    # was dispatched above, so there is no residency left to strip.
    return numpy.asarray(array)  # lint-ok: R8


def coerce_float64(values):
    """Coerce to float64 without discarding array subclasses.

    ``np.asarray`` does not dispatch ``__array_function__`` and silently
    strips ndarray subclasses — it would drop a device-resident operand
    (the guard backend's residency marker) onto the host as plain data.
    ``astype`` preserves the subclass, so a device array that illegally
    reaches host-only code fails loudly at the next host/device mix
    instead of corrupting silently.  Host-contract layers (quantizer,
    conductance storage, LIF state) coerce their inputs through this.
    """
    if isinstance(values, numpy.ndarray):
        if values.dtype == numpy.float64:
            return values
        return values.astype(numpy.float64)
    # Non-array input (list/tuple/scalar) carries no residency to strip.
    return numpy.asarray(values, dtype=numpy.float64)  # lint-ok: R8
