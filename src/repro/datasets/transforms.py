"""Image transforms: downsampling, normalisation, binarisation.

Small utilities the pipeline uses to adapt 28x28 IDX material to scaled-down
experiment sizes and to condition synthetic images.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DatasetError


def downsample(images: np.ndarray, factor: int) -> np.ndarray:
    """Block-mean downsample by an integer *factor* (batch or single image).

    ``(n, h, w)`` or ``(h, w)`` uint8/float input; dimensions must divide by
    *factor*.  Returns the same dtype family (uint8 in, uint8 out).
    """
    if factor < 1:
        raise DatasetError(f"factor must be >= 1, got {factor}")
    arr = np.asarray(images)
    single = arr.ndim == 2
    if single:
        arr = arr[None]
    if arr.ndim != 3:
        raise DatasetError(f"images must be 2-D or 3-D, got shape {arr.shape}")
    n, h, w = arr.shape
    if h % factor or w % factor:
        raise DatasetError(f"image size ({h}, {w}) not divisible by factor {factor}")
    out = (
        arr.reshape(n, h // factor, factor, w // factor, factor)
        .astype(np.float64)
        .mean(axis=(2, 4))
    )
    if np.issubdtype(np.asarray(images).dtype, np.integer):
        out = np.clip(np.round(out), 0, 255).astype(np.uint8)
    return out[0] if single else out


def normalize_intensity(images: np.ndarray, peak: int = 255) -> np.ndarray:
    """Rescale each image so its maximum pixel hits *peak* (uint8 out).

    Blank images are returned unchanged.
    """
    if not 1 <= peak <= 255:
        raise DatasetError(f"peak must be in [1, 255], got {peak}")
    arr = np.asarray(images, dtype=np.float64)
    single = arr.ndim == 2
    if single:
        arr = arr[None]
    maxima = arr.max(axis=(1, 2), keepdims=True)
    scale = np.where(maxima > 0, peak / np.maximum(maxima, 1e-9), 1.0)
    out = np.clip(np.round(arr * scale), 0, 255).astype(np.uint8)
    return out[0] if single else out


def binarize(images: np.ndarray, threshold: int = 128) -> np.ndarray:
    """Threshold to {0, 255} (uint8)."""
    if not 0 <= threshold <= 255:
        raise DatasetError(f"threshold must be in [0, 255], got {threshold}")
    arr = np.asarray(images)
    return np.where(arr >= threshold, 255, 0).astype(np.uint8)


def salt_pepper(
    images: np.ndarray, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Corrupt a *fraction* of pixels to 0 or 255 (half each, uint8 out).

    The robustness-extension workload: rate coding turns pixel corruption
    directly into wrong-frequency spike trains.
    """
    if not 0.0 <= fraction <= 1.0:
        raise DatasetError(f"fraction must be in [0, 1], got {fraction}")
    arr = np.asarray(images).copy().astype(np.uint8)
    draws = rng.random(arr.shape)
    arr[draws < fraction / 2.0] = 0
    arr[(draws >= fraction / 2.0) & (draws < fraction)] = 255
    return arr


def occlude(
    images: np.ndarray, size: int, rng: np.random.Generator
) -> np.ndarray:
    """Zero a random ``size x size`` square per image (uint8 out).

    Structured occlusion, the harder robustness case: a contiguous part of
    the learned feature goes silent.
    """
    arr = np.asarray(images).copy().astype(np.uint8)
    single = arr.ndim == 2
    if single:
        arr = arr[None]
    if arr.ndim != 3:
        raise DatasetError(f"images must be 2-D or 3-D, got shape {arr.shape}")
    h, w = arr.shape[1], arr.shape[2]
    if not 0 <= size <= min(h, w):
        raise DatasetError(f"occlusion size {size} exceeds image {h}x{w}")
    if size > 0:
        for i in range(arr.shape[0]):
            y = int(rng.integers(0, h - size + 1))
            x = int(rng.integers(0, w - size + 1))
            arr[i, y : y + size, x : x + size] = 0
    return arr[0] if single else arr
