"""Procedural apparel silhouettes (the Fashion-MNIST surrogate).

Fashion-MNIST is the paper's "complex" dataset: filled, texture-rich shapes
whose classes share large overlapping regions (t-shirt vs pullover vs coat
vs shirt; sneaker vs sandal vs ankle boot).  That overlap is precisely what
defeats deterministic STDP in Section IV-B — every neuron latches onto the
shared blob and no class-specific features survive.

The surrogate builds each class from filled geometric parts (torso
trapezoids, sleeves, legs, soles, straps...) on the unit frame, then applies
the same affine jitter as the digit generator plus multiplicative low-
frequency texture noise.  The four top-wear classes are intentionally
parameter-neighbours so their silhouettes overlap heavily, and the three
shoe classes likewise.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError

#: Seed of the fallback generator when :func:`render_fashion` is called
#: without one (determinism rule R1 forbids seedless ``default_rng()``).
DEFAULT_RENDER_SEED = 0

FASHION_CLASS_NAMES = (
    "tshirt",
    "trouser",
    "pullover",
    "dress",
    "coat",
    "sandal",
    "shirt",
    "sneaker",
    "bag",
    "boot",
)

N_CLASSES = 10

# ---------------------------------------------------------------------------
# filled-shape primitives: masks over a normalised coordinate grid
# ---------------------------------------------------------------------------


def _grid(size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Normalised (x, y) coordinate grids, y pointing down."""
    ys, xs = np.mgrid[0:size, 0:size]
    return xs / (size - 1), ys / (size - 1)


def _quad(x, y, corners: Sequence[Tuple[float, float]]) -> np.ndarray:
    """Mask of a convex quadrilateral given corners in clockwise order."""
    mask = np.ones_like(x, dtype=bool)
    pts = list(corners)
    for (x1, y1), (x2, y2) in zip(pts, pts[1:] + pts[:1]):
        # Inside = right of each directed edge (clockwise, y-down frame).
        cross = (x2 - x1) * (y - y1) - (y2 - y1) * (x - x1)
        mask &= cross >= 0
    return mask


def _rect(x, y, x0: float, y0: float, x1: float, y1: float) -> np.ndarray:
    return (x >= x0) & (x <= x1) & (y >= y0) & (y <= y1)


def _ellipse(x, y, cx: float, cy: float, rx: float, ry: float) -> np.ndarray:
    return ((x - cx) / rx) ** 2 + ((y - cy) / ry) ** 2 <= 1.0


def _torso(x, y, shoulder: float, hem: float, top: float, bottom: float) -> np.ndarray:
    """Trapezoid torso: *shoulder* half-width at *top*, *hem* at *bottom*."""
    return _quad(
        x,
        y,
        [
            (0.5 - shoulder, top),
            (0.5 + shoulder, top),
            (0.5 + hem, bottom),
            (0.5 - hem, bottom),
        ],
    )


def _sleeves(x, y, length: float, drop: float, width: float) -> np.ndarray:
    left = _quad(
        x, y,
        [(0.5 - 0.22, 0.24), (0.5 - 0.22, 0.24 + width), (0.5 - 0.22 - length, 0.24 + drop + width), (0.5 - 0.22 - length, 0.24 + drop)],
    )
    right = _quad(
        x, y,
        [(0.5 + 0.22, 0.24), (0.5 + 0.22 + length, 0.24 + drop), (0.5 + 0.22 + length, 0.24 + drop + width), (0.5 + 0.22, 0.24 + width)],
    )
    return left | right


# ---------------------------------------------------------------------------
# class shape definitions
# ---------------------------------------------------------------------------


# The four top-wear classes share this exact torso; they differ only in
# sleeve length, hem extension and collar — small regions relative to the
# shared blob, mirroring the property that defeats deterministic STDP on
# real Fashion-MNIST.
def _shared_torso(x, y) -> np.ndarray:
    return _torso(x, y, 0.22, 0.21, 0.22, 0.76)


# The three shoe classes share this sole + body.
def _shared_shoe(x, y) -> np.ndarray:
    sole = _quad(x, y, [(0.16, 0.68), (0.84, 0.64), (0.86, 0.78), (0.16, 0.82)])
    body = _quad(x, y, [(0.22, 0.52), (0.60, 0.48), (0.82, 0.66), (0.20, 0.70)])
    return sole | body


def _shape_tshirt(x, y) -> np.ndarray:
    return _shared_torso(x, y) | _sleeves(x, y, 0.12, 0.08, 0.10)


def _shape_trouser(x, y) -> np.ndarray:
    waist = _rect(x, y, 0.34, 0.14, 0.66, 0.26)
    left = _quad(x, y, [(0.34, 0.26), (0.49, 0.26), (0.46, 0.90), (0.32, 0.90)])
    right = _quad(x, y, [(0.51, 0.26), (0.66, 0.26), (0.68, 0.90), (0.54, 0.90)])
    return waist | left | right


def _shape_pullover(x, y) -> np.ndarray:
    return _shared_torso(x, y) | _sleeves(x, y, 0.17, 0.30, 0.10)


def _shape_dress(x, y) -> np.ndarray:
    bodice = _torso(x, y, 0.16, 0.13, 0.18, 0.45)
    skirt = _quad(x, y, [(0.5 - 0.13, 0.45), (0.5 + 0.13, 0.45), (0.5 + 0.30, 0.90), (0.5 - 0.30, 0.90)])
    return bodice | skirt


def _shape_coat(x, y) -> np.ndarray:
    hem = _quad(x, y, [(0.5 - 0.21, 0.76), (0.5 + 0.21, 0.76), (0.5 + 0.23, 0.90), (0.5 - 0.23, 0.90)])
    return _shared_torso(x, y) | hem | _sleeves(x, y, 0.17, 0.30, 0.10)


def _shape_sandal(x, y) -> np.ndarray:
    straps = _rect(x, y, 0.30, 0.40, 0.38, 0.56) | _rect(x, y, 0.50, 0.36, 0.58, 0.52)
    return _shared_shoe(x, y) | straps


def _shape_shirt(x, y) -> np.ndarray:
    collar = _quad(x, y, [(0.40, 0.12), (0.60, 0.12), (0.54, 0.24), (0.46, 0.24)])
    return _shared_torso(x, y) | _sleeves(x, y, 0.12, 0.08, 0.10) | collar


def _shape_sneaker(x, y) -> np.ndarray:
    tongue = _rect(x, y, 0.44, 0.38, 0.58, 0.52)
    return _shared_shoe(x, y) | tongue


def _shape_bag(x, y) -> np.ndarray:
    body = _rect(x, y, 0.22, 0.40, 0.78, 0.82)
    handle = _ellipse(x, y, 0.5, 0.38, 0.18, 0.16) & ~_ellipse(x, y, 0.5, 0.38, 0.11, 0.10)
    return body | handle


def _shape_boot(x, y) -> np.ndarray:
    shaft = _rect(x, y, 0.24, 0.22, 0.46, 0.62)
    return _shared_shoe(x, y) | shaft


_SHAPES: Dict[int, Callable] = {
    0: _shape_tshirt,
    1: _shape_trouser,
    2: _shape_pullover,
    3: _shape_dress,
    4: _shape_coat,
    5: _shape_sandal,
    6: _shape_shirt,
    7: _shape_sneaker,
    8: _shape_bag,
    9: _shape_boot,
}


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _texture(size: int, rng: np.random.Generator, strength: float) -> np.ndarray:
    """Smooth multiplicative texture in [1-strength, 1+strength]."""
    coarse = rng.normal(0.0, 1.0, size=(4, 4))
    # Bilinear upsample to full resolution.
    xs = np.linspace(0, 3, size)
    x0 = np.clip(xs.astype(int), 0, 2)
    frac = xs - x0
    rows = coarse[x0, :] * (1 - frac[:, None]) + coarse[np.minimum(x0 + 1, 3), :] * frac[:, None]
    cols = rows[:, x0] * (1 - frac[None, :]) + rows[:, np.minimum(x0 + 1, 3)] * frac[None, :]
    cols = cols / max(np.abs(cols).max(), 1e-9)
    return 1.0 + strength * cols


def render_fashion(
    cls: int,
    size: int = 16,
    rng: Optional[np.random.Generator] = None,
    jitter: float = 1.0,
) -> np.ndarray:
    """Render one jittered apparel sample as a ``uint8`` image.

    Without *rng* a generator seeded with :data:`DEFAULT_RENDER_SEED` is
    used, so repeated calls draw the *same* jitter; pass a shared generator
    (as :func:`generate_fashion` does) for varied samples.
    """
    if cls not in _SHAPES:
        raise DatasetError(f"class must be in 0..9, got {cls}")
    rng = rng if rng is not None else np.random.default_rng(DEFAULT_RENDER_SEED)
    x, y = _grid(size)

    # Affine jitter of the sampling grid (inverse-warp the coordinates).
    angle = rng.normal(0.0, 0.06 * jitter)
    scale = 1.0 + rng.normal(0.0, 0.06 * jitter, size=2)
    shift = rng.normal(0.0, 0.03 * jitter, size=2)
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    xc, yc = x - 0.5, y - 0.5
    xw = (cos_a * xc + sin_a * yc) / scale[0] + 0.5 - shift[0]
    yw = (-sin_a * xc + cos_a * yc) / scale[1] + 0.5 - shift[1]

    mask = _SHAPES[cls](xw, yw)
    base = rng.uniform(170.0, 235.0)
    img = mask.astype(np.float64) * base * _texture(size, rng, 0.15 * jitter)
    img += rng.normal(0.0, 5.0, size=img.shape)
    return np.clip(img, 0, 255).astype(np.uint8)


def generate_fashion(
    n_images: int,
    size: int = 16,
    seed: int = 0,
    jitter: float = 1.0,
    labels: Optional[Sequence[int]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a balanced apparel set: ``(images, labels)``."""
    if n_images < 1:
        raise DatasetError(f"n_images must be >= 1, got {n_images}")
    rng = np.random.default_rng(seed)
    if labels is None:
        label_arr = np.arange(n_images) % N_CLASSES
        rng.shuffle(label_arr)
    else:
        label_arr = np.asarray(list(labels), dtype=np.int64)
        if label_arr.shape != (n_images,):
            raise DatasetError(f"labels must have length {n_images}, got {label_arr.shape}")
        if label_arr.size and (label_arr.min() < 0 or label_arr.max() >= N_CLASSES):
            raise DatasetError("labels must be in 0..9")
    images = np.stack(
        [render_fashion(int(lbl), size=size, rng=rng, jitter=jitter) for lbl in label_arr]
    )
    return images, label_arr


def class_overlap_matrix(size: int = 32) -> np.ndarray:
    """Pairwise IoU of the clean class silhouettes.

    Documents the built-in "complexity": the top-wear block (tshirt,
    pullover, coat, shirt) shows high mutual IoU, as do the shoe classes.
    Used by tests and by DESIGN.md's substitution argument.
    """
    x, y = _grid(size)
    masks = [_SHAPES[c](x, y) for c in range(N_CLASSES)]
    iou = np.zeros((N_CLASSES, N_CLASSES))
    for i in range(N_CLASSES):
        for j in range(N_CLASSES):
            inter = np.logical_and(masks[i], masks[j]).sum()
            union = np.logical_or(masks[i], masks[j]).sum()
            iou[i, j] = inter / union if union else 0.0
    return iou
