"""Reader/writer for the IDX binary format used by MNIST distributions.

Implements the format described on the MNIST page: a magic number whose
third byte encodes the element dtype and fourth byte the number of
dimensions, followed by big-endian dimension sizes and raw data.  Only the
dtypes appearing in MNIST-style files are supported.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import DatasetError

#: IDX type byte -> numpy dtype (big-endian where multi-byte).
_TYPE_CODES = {
    0x08: np.dtype(np.uint8),
    0x09: np.dtype(np.int8),
    0x0B: np.dtype(">i2"),
    0x0C: np.dtype(">i4"),
    0x0D: np.dtype(">f4"),
    0x0E: np.dtype(">f8"),
}
_DTYPE_TO_CODE = {
    np.dtype(np.uint8): 0x08,
    np.dtype(np.int8): 0x09,
    np.dtype(">i2"): 0x0B,
    np.dtype(">i4"): 0x0C,
    np.dtype(">f4"): 0x0D,
    np.dtype(">f8"): 0x0E,
}


def read_idx(path: Union[str, Path]) -> np.ndarray:
    """Read an IDX file into a numpy array (native byte order)."""
    raw = Path(path).read_bytes()
    if len(raw) < 4:
        raise DatasetError(f"{path}: too short to be an IDX file")
    zero1, zero2, type_code, ndim = struct.unpack(">BBBB", raw[:4])
    if zero1 != 0 or zero2 != 0:
        raise DatasetError(f"{path}: bad IDX magic (first two bytes must be zero)")
    dtype = _TYPE_CODES.get(type_code)
    if dtype is None:
        raise DatasetError(f"{path}: unknown IDX type code 0x{type_code:02x}")
    header_end = 4 + 4 * ndim
    if len(raw) < header_end:
        raise DatasetError(f"{path}: truncated IDX dimension header")
    shape = struct.unpack(f">{ndim}I", raw[4:header_end])
    expected = int(np.prod(shape)) * dtype.itemsize
    body = raw[header_end:]
    if len(body) != expected:
        raise DatasetError(
            f"{path}: payload is {len(body)} bytes, expected {expected} for shape {shape}"
        )
    arr = np.frombuffer(body, dtype=dtype).reshape(shape)
    return arr.astype(arr.dtype.newbyteorder("="))


def write_idx(path: Union[str, Path], array: np.ndarray) -> None:
    """Write *array* as an IDX file (round-trips with :func:`read_idx`)."""
    arr = np.asarray(array)
    if arr.dtype == np.uint8 or arr.dtype == np.int8:
        out = arr
    elif arr.dtype.kind == "i" and arr.dtype.itemsize == 2:
        out = arr.astype(">i2")
    elif arr.dtype.kind == "i":
        out = arr.astype(">i4")
    elif arr.dtype.kind == "f" and arr.dtype.itemsize == 4:
        out = arr.astype(">f4")
    elif arr.dtype.kind == "f":
        out = arr.astype(">f8")
    else:
        raise DatasetError(f"dtype {arr.dtype} not representable in IDX")
    code = _DTYPE_TO_CODE[np.dtype(out.dtype)]
    header = struct.pack(">BBBB", 0, 0, code, out.ndim)
    header += struct.pack(f">{out.ndim}I", *out.shape)
    Path(path).write_bytes(header + out.tobytes())


def load_mnist_pair(images_path: Union[str, Path], labels_path: Union[str, Path]):
    """Load an (images, labels) IDX pair, checking consistency."""
    images = read_idx(images_path)
    labels = read_idx(labels_path)
    if images.ndim != 3:
        raise DatasetError(f"{images_path}: expected 3-D image tensor, got {images.shape}")
    if labels.ndim != 1 or labels.shape[0] != images.shape[0]:
        raise DatasetError(
            f"label count {labels.shape} does not match image count {images.shape[0]}"
        )
    return images, labels
