"""Procedural stroke-based digit images (the MNIST surrogate).

Each of the ten digit classes is defined as a set of stroke primitives
(line segments and elliptical arcs) in a unit coordinate frame.  A sample is
rendered by

1. jittering the frame with a small random affine transform (translation,
   anisotropic scale, rotation, shear) — the intra-class variation;
2. sampling dense points along every stroke;
3. splatting a Gaussian pen profile around the stroke skeleton onto the
   pixel grid and scaling to 8-bit intensity with per-sample brightness
   variation.

The result is white-on-black digit images of configurable size whose
statistics (sparse bright strokes, class-specific shapes, heavy intra-class
jitter) match what the paper's WTA/STDP pipeline consumes.  Rendering is
deterministic given the RNG, so datasets are reproducible from a seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import DatasetError

#: Seed of the fallback generator when :func:`render_digit` is called
#: without one.  A *fixed* default keeps even ad-hoc rendering
#: reproducible — determinism rule R1 forbids seedless ``default_rng()``.
DEFAULT_RENDER_SEED = 0

# ---------------------------------------------------------------------------
# stroke primitives (unit frame: x right, y down, both in [0, 1])
# ---------------------------------------------------------------------------


def _line(p1: Tuple[float, float], p2: Tuple[float, float], n: int = 32) -> np.ndarray:
    """Points along a straight segment."""
    t = np.linspace(0.0, 1.0, n)[:, None]
    return np.asarray(p1) * (1 - t) + np.asarray(p2) * t


def _arc(
    center: Tuple[float, float],
    rx: float,
    ry: float,
    deg_start: float,
    deg_end: float,
    n: int = 48,
) -> np.ndarray:
    """Points along an elliptical arc (angles in degrees, y-down frame)."""
    theta = np.radians(np.linspace(deg_start, deg_end, n))
    x = center[0] + rx * np.cos(theta)
    y = center[1] + ry * np.sin(theta)
    return np.stack([x, y], axis=1)


#: Stroke skeletons per digit class.  Coordinates tuned by eye to look like
#: handwritten digits when splatted with a ~1-pixel pen.
_DIGIT_STROKES: Dict[int, List[np.ndarray]] = {
    0: [_arc((0.5, 0.5), 0.26, 0.36, 0, 360)],
    1: [_line((0.38, 0.28), (0.54, 0.14)), _line((0.54, 0.14), (0.54, 0.86))],
    2: [
        _arc((0.5, 0.32), 0.22, 0.18, 150, 370),
        _line((0.68, 0.42), (0.30, 0.84)),
        _line((0.30, 0.84), (0.72, 0.84)),
    ],
    3: [
        _arc((0.47, 0.32), 0.20, 0.17, 160, 400),
        _arc((0.47, 0.67), 0.22, 0.19, 320, 560),
    ],
    4: [
        _line((0.58, 0.14), (0.28, 0.60)),
        _line((0.28, 0.60), (0.74, 0.60)),
        _line((0.60, 0.32), (0.60, 0.88)),
    ],
    5: [
        _line((0.68, 0.16), (0.34, 0.16)),
        _line((0.34, 0.16), (0.32, 0.48)),
        _arc((0.48, 0.65), 0.21, 0.21, 250, 480),
    ],
    6: [
        _arc((0.54, 0.30), 0.22, 0.28, 220, 320),
        _line((0.34, 0.24), (0.30, 0.62)),
        _arc((0.48, 0.68), 0.19, 0.18, 0, 360),
    ],
    7: [
        _line((0.28, 0.16), (0.72, 0.16)),
        _line((0.72, 0.16), (0.42, 0.86)),
    ],
    8: [
        _arc((0.5, 0.31), 0.18, 0.16, 0, 360),
        _arc((0.5, 0.66), 0.21, 0.19, 0, 360),
    ],
    9: [
        _arc((0.48, 0.34), 0.19, 0.18, 0, 360),
        _line((0.66, 0.36), (0.62, 0.86)),
    ],
}

N_CLASSES = 10


def digit_skeleton(digit: int) -> np.ndarray:
    """All skeleton points of a digit class, shape ``(k, 2)``, unit frame."""
    if digit not in _DIGIT_STROKES:
        raise DatasetError(f"digit must be in 0..9, got {digit}")
    return np.concatenate(_DIGIT_STROKES[digit], axis=0)


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------


def _jitter_matrix(rng: np.random.Generator, jitter: float) -> np.ndarray:
    """A random 2x2 affine (scale/rotation/shear) scaled by *jitter*."""
    angle = rng.normal(0.0, 0.10 * jitter)
    scale = 1.0 + rng.normal(0.0, 0.08 * jitter, size=2)
    shear = rng.normal(0.0, 0.08 * jitter)
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    rotation = np.array([[cos_a, -sin_a], [sin_a, cos_a]])
    shear_m = np.array([[1.0, shear], [0.0, 1.0]])
    return rotation @ shear_m @ np.diag(scale)


def render_points(
    points: np.ndarray,
    size: int,
    pen_sigma: float,
    peak: float,
) -> np.ndarray:
    """Splat skeleton *points* (unit frame) onto a ``size x size`` float image.

    Intensity at a pixel is ``peak * exp(-d^2 / (2 sigma^2))`` with *d* the
    distance to the nearest skeleton point, giving a smooth pen profile.
    """
    if size < 4:
        raise DatasetError(f"image size must be >= 4, got {size}")
    coords = points * (size - 1)
    ys, xs = np.mgrid[0:size, 0:size]
    pix = np.stack([xs.ravel(), ys.ravel()], axis=1).astype(np.float64)
    # (n_pixels, n_points) squared distances; min over points.
    d2 = ((pix[:, None, :] - coords[None, :, :]) ** 2).sum(axis=2)
    d2_min = d2.min(axis=1)
    img = peak * np.exp(-d2_min / (2.0 * pen_sigma**2))
    return img.reshape(size, size)


def render_digit(
    digit: int,
    size: int = 16,
    rng: Optional[np.random.Generator] = None,
    jitter: float = 1.0,
    pen_sigma: Optional[float] = None,
) -> np.ndarray:
    """Render one jittered digit sample as a ``uint8`` image.

    Without *rng* a generator seeded with :data:`DEFAULT_RENDER_SEED` is
    used, so repeated calls draw the *same* jitter; pass a shared generator
    (as :func:`generate_digits` does) for varied samples.
    """
    rng = rng if rng is not None else np.random.default_rng(DEFAULT_RENDER_SEED)
    skeleton = digit_skeleton(digit)

    center = skeleton.mean(axis=0)
    matrix = _jitter_matrix(rng, jitter)
    shift = rng.normal(0.0, 0.04 * jitter, size=2)
    transformed = (skeleton - center) @ matrix.T + center + shift
    transformed = np.clip(transformed, 0.02, 0.98)

    if pen_sigma is None:
        pen_sigma = max(size / 16.0, 0.8)
    peak = rng.uniform(200.0, 255.0)
    img = render_points(transformed, size, pen_sigma, peak)
    noise = rng.normal(0.0, 4.0, size=img.shape)
    return np.clip(img + noise, 0, 255).astype(np.uint8)


def generate_digits(
    n_images: int,
    size: int = 16,
    seed: int = 0,
    jitter: float = 1.0,
    labels: Optional[Sequence[int]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a balanced digit set: ``(images, labels)``.

    Classes cycle 0..9 unless *labels* pins them explicitly.  Returns images
    of shape ``(n_images, size, size)`` dtype ``uint8`` and int labels.
    """
    if n_images < 1:
        raise DatasetError(f"n_images must be >= 1, got {n_images}")
    rng = np.random.default_rng(seed)
    if labels is None:
        label_arr = np.arange(n_images) % N_CLASSES
        rng.shuffle(label_arr)
    else:
        label_arr = np.asarray(list(labels), dtype=np.int64)
        if label_arr.shape != (n_images,):
            raise DatasetError(
                f"labels must have length {n_images}, got {label_arr.shape}"
            )
        if label_arr.size and (label_arr.min() < 0 or label_arr.max() >= N_CLASSES):
            raise DatasetError("labels must be in 0..9")
    images = np.stack(
        [render_digit(int(lbl), size=size, rng=rng, jitter=jitter) for lbl in label_arr]
    )
    return images, label_arr
