"""The dataset container and the top-level loader.

:class:`Dataset` bundles train/test images and labels with validation and
convenience views.  :func:`load_dataset` is what examples and benches call:
``"mnist"`` / ``"fashion"`` return the procedural surrogates (or the real
IDX files when a directory containing them is supplied or pointed to by the
``REPRO_MNIST_DIR`` / ``REPRO_FASHION_DIR`` environment variables — see
DESIGN.md §2 on the substitution).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

import numpy as np

from repro.datasets.idx import load_mnist_pair
from repro.datasets.synthetic_fashion import generate_fashion
from repro.datasets.synthetic_mnist import generate_digits
from repro.datasets.transforms import downsample
from repro.errors import DatasetError

#: Standard IDX file names inside a dataset directory.
_IDX_FILES = {
    "train_images": "train-images-idx3-ubyte",
    "train_labels": "train-labels-idx1-ubyte",
    "test_images": "t10k-images-idx3-ubyte",
    "test_labels": "t10k-labels-idx1-ubyte",
}


@dataclass
class Dataset:
    """Images (`uint8`, ``(n, h, w)``) and integer labels for both splits."""

    name: str
    train_images: np.ndarray
    train_labels: np.ndarray
    test_images: np.ndarray
    test_labels: np.ndarray
    n_classes: int = 10

    def __post_init__(self) -> None:
        for split, images, labels in (
            ("train", self.train_images, self.train_labels),
            ("test", self.test_images, self.test_labels),
        ):
            if images.ndim != 3:
                raise DatasetError(f"{split} images must be 3-D, got shape {images.shape}")
            if labels.shape != (images.shape[0],):
                raise DatasetError(
                    f"{split} labels shape {labels.shape} does not match "
                    f"{images.shape[0]} images"
                )
            if labels.size and (labels.min() < 0 or labels.max() >= self.n_classes):
                raise DatasetError(f"{split} labels out of range [0, {self.n_classes})")

    @property
    def image_shape(self) -> Tuple[int, int]:
        return self.train_images.shape[1], self.train_images.shape[2]

    @property
    def n_pixels(self) -> int:
        h, w = self.image_shape
        return h * w

    def labeling_split(self, n_labeling: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Split the test set per the paper's protocol.

        "the first 1000 images in the test set are used to label all the
        neurons ... The rest of the test set ... are used for inference."
        Returns ``(label_images, label_labels, infer_images, infer_labels)``.
        """
        if not 0 < n_labeling < self.test_images.shape[0]:
            raise DatasetError(
                f"n_labeling must be in (0, {self.test_images.shape[0]}), got {n_labeling}"
            )
        return (
            self.test_images[:n_labeling],
            self.test_labels[:n_labeling],
            self.test_images[n_labeling:],
            self.test_labels[n_labeling:],
        )

    def subset(self, n_train: int, n_test: int) -> "Dataset":
        """A leading subset of both splits (for quick runs)."""
        if n_train > self.train_images.shape[0] or n_test > self.test_images.shape[0]:
            raise DatasetError("subset larger than dataset")
        return Dataset(
            name=self.name,
            train_images=self.train_images[:n_train],
            train_labels=self.train_labels[:n_train],
            test_images=self.test_images[:n_test],
            test_labels=self.test_labels[:n_test],
            n_classes=self.n_classes,
        )


def _idx_dir_for(name: str, data_dir: Optional[str]) -> Optional[Path]:
    if data_dir is not None:
        return Path(data_dir)
    env = {"mnist": "REPRO_MNIST_DIR", "fashion": "REPRO_FASHION_DIR"}.get(name)
    if env and os.environ.get(env):
        return Path(os.environ[env])
    return None


def _load_idx_dataset(name: str, directory: Path, size: Optional[int]) -> Dataset:
    paths = {key: directory / fname for key, fname in _IDX_FILES.items()}
    missing = [str(p) for p in paths.values() if not p.exists()]
    if missing:
        raise DatasetError(f"IDX files missing under {directory}: {missing}")
    train_images, train_labels = load_mnist_pair(paths["train_images"], paths["train_labels"])
    test_images, test_labels = load_mnist_pair(paths["test_images"], paths["test_labels"])
    if size is not None and size != train_images.shape[1]:
        factor = train_images.shape[1] // size
        train_images = downsample(train_images, factor)
        test_images = downsample(test_images, factor)
    return Dataset(
        name=name,
        train_images=train_images,
        train_labels=train_labels.astype(np.int64),
        test_images=test_images,
        test_labels=test_labels.astype(np.int64),
    )


def load_dataset(
    name: str,
    n_train: int = 200,
    n_test: int = 100,
    size: int = 16,
    seed: int = 0,
    jitter: float = 1.0,
    data_dir: Optional[str] = None,
) -> Dataset:
    """Load ``"mnist"`` or ``"fashion"`` at the requested scale.

    Real IDX files are used when available (see module docs); otherwise the
    procedural surrogate generates ``n_train + n_test`` fresh samples.
    Train and test draws use different seeds so the splits never share
    samples.
    """
    if name not in ("mnist", "fashion"):
        raise DatasetError(f"unknown dataset {name!r}; expected 'mnist' or 'fashion'")

    directory = _idx_dir_for(name, data_dir)
    if directory is not None:
        return _load_idx_dataset(name, directory, size).subset(n_train, n_test)

    generator = generate_digits if name == "mnist" else generate_fashion
    train_images, train_labels = generator(n_train, size=size, seed=seed, jitter=jitter)
    test_images, test_labels = generator(n_test, size=size, seed=seed + 10_000, jitter=jitter)
    return Dataset(
        name=name,
        train_images=train_images,
        train_labels=train_labels,
        test_images=test_images,
        test_labels=test_labels,
    )
