"""On-disk caching for generated datasets.

Procedural generation is deterministic but not free (the digit renderer
computes a dense distance field per image); repeated bench/test runs with
identical parameters can reload a cached ``.npz`` instead.  The cache key
encodes every generation parameter, so differing requests never collide.

Usage::

    from repro.datasets.cache import cached_load_dataset

    ds = cached_load_dataset("mnist", n_train=400, n_test=150, size=16,
                             seed=1, cache_dir="~/.cache/repro")

The cache directory defaults to ``REPRO_CACHE_DIR`` or stays disabled when
neither it nor ``cache_dir`` is set (falling back to plain generation).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.datasets.dataset import Dataset, load_dataset
from repro.errors import DatasetError

#: Bump when the generators change in ways that invalidate cached images.
CACHE_VERSION = 1


def cache_key(**params) -> str:
    """A stable hash of the generation parameters."""
    payload = json.dumps({"version": CACHE_VERSION, **params}, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def _cache_path(cache_dir: Path, name: str, key: str) -> Path:
    return cache_dir / f"{name}-{key}.npz"


def save_dataset(path: Union[str, Path], dataset: Dataset) -> None:
    """Write a dataset to one compressed ``.npz`` file."""
    np.savez_compressed(
        Path(path),
        name=np.array(dataset.name),
        train_images=dataset.train_images,
        train_labels=dataset.train_labels,
        test_images=dataset.test_images,
        test_labels=dataset.test_labels,
        n_classes=np.array(dataset.n_classes),
    )


def load_saved_dataset(path: Union[str, Path]) -> Dataset:
    """Load a dataset written by :func:`save_dataset`."""
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no cached dataset at {path}")
    with np.load(path, allow_pickle=False) as data:
        required = {"name", "train_images", "train_labels", "test_images", "test_labels"}
        if not required <= set(data.files):
            raise DatasetError(f"{path} is not a cached dataset")
        return Dataset(
            name=str(data["name"]),
            train_images=np.array(data["train_images"]),
            train_labels=np.array(data["train_labels"]),
            test_images=np.array(data["test_images"]),
            test_labels=np.array(data["test_labels"]),
            n_classes=int(data["n_classes"]) if "n_classes" in data else 10,
        )


def cached_load_dataset(
    name: str,
    n_train: int = 200,
    n_test: int = 100,
    size: int = 16,
    seed: int = 0,
    jitter: float = 1.0,
    cache_dir: Optional[Union[str, Path]] = None,
) -> Dataset:
    """:func:`repro.datasets.load_dataset` with a transparent disk cache.

    With no usable cache directory this is exactly ``load_dataset``.
    Corrupt cache entries are regenerated, not fatal.
    """
    directory = cache_dir if cache_dir is not None else os.environ.get("REPRO_CACHE_DIR")
    if directory is None:
        return load_dataset(name, n_train=n_train, n_test=n_test, size=size,
                            seed=seed, jitter=jitter)

    directory = Path(directory).expanduser()
    directory.mkdir(parents=True, exist_ok=True)
    key = cache_key(name=name, n_train=n_train, n_test=n_test, size=size,
                    seed=seed, jitter=jitter)
    path = _cache_path(directory, name, key)
    if path.exists():
        try:
            return load_saved_dataset(path)
        except (DatasetError, ValueError, OSError):
            path.unlink(missing_ok=True)

    dataset = load_dataset(name, n_train=n_train, n_test=n_test, size=size,
                           seed=seed, jitter=jitter)
    save_dataset(path, dataset)
    return dataset
