"""On-disk caching for generated datasets.

Procedural generation is deterministic but not free (the digit renderer
computes a dense distance field per image); repeated bench/test runs with
identical parameters can reload a cached ``.npz`` instead.  The cache key
encodes every generation parameter, so differing requests never collide.

Usage::

    from repro.datasets.cache import cached_load_dataset

    ds = cached_load_dataset("mnist", n_train=400, n_test=150, size=16,
                             seed=1, cache_dir="~/.cache/repro")

The cache directory defaults to ``REPRO_CACHE_DIR`` or stays disabled when
neither it nor ``cache_dir`` is set (falling back to plain generation).

Integrity: every cache entry stores a SHA-256 digest over its arrays;
:func:`load_saved_dataset` recomputes and compares it on read, so silent
bit-rot or a torn write surfaces as :class:`~repro.errors.DatasetError`
instead of feeding corrupted images into a run.
:func:`cached_load_dataset` treats that error like any other corrupt entry
— the dataset is regenerated (once) and the entry rewritten.  Writes are
atomic (temp file + rename), matching the checkpoint protocol.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.datasets.dataset import Dataset, load_dataset
from repro.errors import DatasetError

#: Bump when the generators change in ways that invalidate cached images.
#: Version 2 added the stored integrity digest.
CACHE_VERSION = 2


def cache_key(**params) -> str:
    """A stable hash of the generation parameters."""
    payload = json.dumps({"version": CACHE_VERSION, **params}, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


def _cache_path(cache_dir: Path, name: str, key: str) -> Path:
    return cache_dir / f"{name}-{key}.npz"


def dataset_digest(dataset: Dataset) -> str:
    """SHA-256 over the dataset's arrays and identity (order-pinned)."""
    digest = hashlib.sha256()
    digest.update(dataset.name.encode("utf-8"))
    digest.update(str(dataset.n_classes).encode("utf-8"))
    for arr in (
        dataset.train_images,
        dataset.train_labels,
        dataset.test_images,
        dataset.test_labels,
    ):
        digest.update(str(arr.dtype).encode("utf-8"))
        digest.update(str(arr.shape).encode("utf-8"))
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()


def save_dataset(path: Union[str, Path], dataset: Dataset) -> None:
    """Write a dataset (with its integrity digest) atomically to *path*."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(
                handle,
                name=np.array(dataset.name),
                train_images=dataset.train_images,
                train_labels=dataset.train_labels,
                test_images=dataset.test_images,
                test_labels=dataset.test_labels,
                n_classes=np.array(dataset.n_classes),
                digest=np.array(dataset_digest(dataset)),
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def load_saved_dataset(path: Union[str, Path], verify: bool = True) -> Dataset:
    """Load a dataset written by :func:`save_dataset`.

    With *verify* (the default) the stored SHA-256 digest is recomputed
    from the loaded arrays and compared; a missing or mismatching digest
    raises :class:`DatasetError` — the entry is corrupt or predates the
    digest format.
    """
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no cached dataset at {path}")
    try:
        with np.load(path, allow_pickle=False) as data:
            required = {"name", "train_images", "train_labels", "test_images", "test_labels"}
            if not required <= set(data.files):
                raise DatasetError(f"{path} is not a cached dataset")
            dataset = Dataset(
                name=str(data["name"]),
                train_images=np.array(data["train_images"]),
                train_labels=np.array(data["train_labels"]),
                test_images=np.array(data["test_images"]),
                test_labels=np.array(data["test_labels"]),
                n_classes=int(data["n_classes"]) if "n_classes" in data else 10,
            )
            stored = str(data["digest"]) if "digest" in data else None
    except (zipfile.BadZipFile, ValueError, OSError, EOFError) as exc:
        # Torn writes and bit-rot usually die in the zip layer (bad CRC,
        # truncated directory) before the digest is even reachable; map
        # them onto the same typed error the digest check raises.
        raise DatasetError(f"{path} is truncated or corrupt: {exc}") from exc
    if verify:
        if stored is None:
            raise DatasetError(
                f"{path} has no integrity digest (pre-v{CACHE_VERSION} cache "
                f"entry); regenerate it"
            )
        actual = dataset_digest(dataset)
        if actual != stored:
            raise DatasetError(
                f"{path} failed its integrity check: stored digest "
                f"{stored[:12]}..., recomputed {actual[:12]}... — the cache "
                f"entry is corrupt"
            )
    return dataset


def cached_load_dataset(
    name: str,
    n_train: int = 200,
    n_test: int = 100,
    size: int = 16,
    seed: int = 0,
    jitter: float = 1.0,
    cache_dir: Optional[Union[str, Path]] = None,
) -> Dataset:
    """:func:`repro.datasets.load_dataset` with a transparent disk cache.

    With no usable cache directory this is exactly ``load_dataset``.
    Corrupt cache entries are regenerated, not fatal.
    """
    directory = cache_dir if cache_dir is not None else os.environ.get("REPRO_CACHE_DIR")
    if directory is None:
        return load_dataset(name, n_train=n_train, n_test=n_test, size=size,
                            seed=seed, jitter=jitter)

    directory = Path(directory).expanduser()
    directory.mkdir(parents=True, exist_ok=True)
    key = cache_key(name=name, n_train=n_train, n_test=n_test, size=size,
                    seed=seed, jitter=jitter)
    path = _cache_path(directory, name, key)
    if path.exists():
        try:
            return load_saved_dataset(path)
        except (DatasetError, ValueError, OSError):
            path.unlink(missing_ok=True)

    dataset = load_dataset(name, n_train=n_train, n_test=n_test, size=size,
                           seed=seed, jitter=jitter)
    save_dataset(path, dataset)
    return dataset
