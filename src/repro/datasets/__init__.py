"""Datasets: real IDX files when available, procedural surrogates otherwise.

The paper trains on MNIST and Fashion-MNIST (60k train / 10k test, 28x28,
8-bit).  This environment has no network access, so:

- :mod:`repro.datasets.idx` reads/writes the IDX binary format and loads the
  real files if a directory is supplied (``REPRO_MNIST_DIR`` or an explicit
  path);
- :mod:`repro.datasets.synthetic_mnist` procedurally renders stroke-based
  digits with per-sample jitter;
- :mod:`repro.datasets.synthetic_fashion` renders apparel silhouettes whose
  classes deliberately share overlapping shapes (the "complex, feature-rich"
  property driving the paper's Fashion-MNIST results);
- :mod:`repro.datasets.dataset` is the common container with train/test
  splits;
- :mod:`repro.datasets.transforms` provides downsampling/normalisation.

See DESIGN.md §2 for why the substitution preserves the studied behaviour.
"""

from repro.datasets.dataset import Dataset, load_dataset
from repro.datasets.idx import read_idx, write_idx
from repro.datasets.synthetic_fashion import FASHION_CLASS_NAMES, generate_fashion
from repro.datasets.synthetic_mnist import generate_digits
from repro.datasets.transforms import binarize, downsample, normalize_intensity

__all__ = [
    "Dataset",
    "load_dataset",
    "read_idx",
    "write_idx",
    "FASHION_CLASS_NAMES",
    "generate_fashion",
    "generate_digits",
    "binarize",
    "downsample",
    "normalize_intensity",
]
