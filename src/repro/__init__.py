"""ParallelSpikeSim reproduction: stochastic STDP for fast, low-precision
unsupervised learning in spiking neural networks.

Reproduces She, Long & Mukhopadhyay, "Fast and Low-Precision Learning in
GPU-Accelerated Spiking Neural Network" (DATE 2019).  See DESIGN.md for the
system inventory and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import get_preset, load_dataset, run_experiment, STDPKind

    dataset = load_dataset("mnist", n_train=200, n_test=100, size=16)
    config = get_preset("float32", stdp_kind=STDPKind.STOCHASTIC, n_neurons=64)
    result = run_experiment(config, dataset)
    print(f"accuracy: {result.accuracy:.1%}")
"""

from repro.config import (
    AdaptiveThresholdParameters,
    DeterministicSTDPParameters,
    EncodingParameters,
    EngineConfig,
    ExperimentConfig,
    LIFParameters,
    QuantizationConfig,
    RoundingMode,
    SimulationParameters,
    STDPKind,
    StochasticSTDPParameters,
    WTAParameters,
    available_presets,
    baseline_preset,
    get_preset,
    high_frequency_preset,
)
from repro.datasets import Dataset, load_dataset
from repro.engine import (
    BatchedInference,
    EngineSpec,
    Equivalence,
    RngStreams,
    Simulator,
    available_engines,
    register_engine,
)
from repro.learning import DeterministicSTDP, LTDMode, StochasticSTDP, WeightNormalizer
from repro.io.checkpoint import load_checkpoint, save_checkpoint
from repro.network import WTANetwork
from repro.pipeline import (
    EvaluationResult,
    ParameterSweep,
    Evaluator,
    ExperimentResult,
    TrainingLog,
    UnsupervisedTrainer,
    run_experiment,
)
from repro.quantization import QFormat, make_quantizer, parse_qformat
from repro.version import __version__

__all__ = [
    "AdaptiveThresholdParameters",
    "DeterministicSTDPParameters",
    "EncodingParameters",
    "EngineConfig",
    "ExperimentConfig",
    "LIFParameters",
    "QuantizationConfig",
    "RoundingMode",
    "SimulationParameters",
    "STDPKind",
    "StochasticSTDPParameters",
    "WTAParameters",
    "available_presets",
    "baseline_preset",
    "get_preset",
    "high_frequency_preset",
    "Dataset",
    "load_dataset",
    "BatchedInference",
    "EngineSpec",
    "Equivalence",
    "RngStreams",
    "Simulator",
    "available_engines",
    "register_engine",
    "load_checkpoint",
    "save_checkpoint",
    "ParameterSweep",
    "DeterministicSTDP",
    "LTDMode",
    "StochasticSTDP",
    "WeightNormalizer",
    "WTANetwork",
    "EvaluationResult",
    "Evaluator",
    "ExperimentResult",
    "TrainingLog",
    "UnsupervisedTrainer",
    "run_experiment",
    "QFormat",
    "make_quantizer",
    "parse_qformat",
    "__version__",
]
