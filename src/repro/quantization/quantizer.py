"""Quantiser objects binding a storage format to a rounding option.

The learning module talks to a single small interface:

- ``quantize(values, rng)`` — snap a conductance array onto the storage
  grid with the configured rounding option and clamp it into range;
- ``quantize_delta(delta, rng)`` — quantise a conductance *change* before it
  is applied ("Quantization for low precision learning is performed before
  the LTP/LTD phase", Section III-C);
- ``lsb_delta()`` — the fixed per-event step ``1/2^n`` used for 8-bit and
  lower precisions;
- ``uses_fixed_lsb`` — whether that fixed step is active for this format.

:func:`make_quantizer` builds the right object from a
:class:`repro.config.QuantizationConfig`: a :class:`FloatQuantizer` no-op
for 32-bit floating point, a :class:`Quantizer` otherwise.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.backend import coerce_float64
from repro.config.parameters import QuantizationConfig, RoundingMode
from repro.errors import QuantizationError
from repro.quantization.qformat import QFormat, parse_qformat
from repro.quantization.rounding import round_nearest, round_stochastic, round_truncate

#: Total bit widths at or below which the paper replaces the computed
#: conductance change with the fixed one-LSB step (Section III-C).
FIXED_LSB_MAX_BITS = 8


class FloatQuantizer:
    """Identity quantiser for 32-bit floating-point learning."""

    #: Floating point has no fixed-LSB regime.
    uses_fixed_lsb: bool = False

    @property
    def fmt(self) -> Optional[QFormat]:
        return None

    @property
    def g_min(self) -> float:
        return 0.0

    @property
    def g_max(self) -> float:
        return 1.0

    def quantize(self, values: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Clamp into [g_min, g_max]; no grid snapping in floating point."""
        return np.clip(coerce_float64(values), self.g_min, self.g_max)

    def quantize_delta(
        self, delta: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Floating-point deltas pass through unchanged."""
        return coerce_float64(delta)

    def lsb_delta(self) -> float:
        raise QuantizationError("floating-point learning has no fixed LSB step")

    def describe(self) -> str:
        return "float32 (no quantisation)"


class Quantizer:
    """Fixed-point quantiser with one of the three rounding options."""

    def __init__(self, fmt: QFormat, rounding: RoundingMode) -> None:
        self._fmt = fmt
        self._rounding = rounding

    @property
    def fmt(self) -> QFormat:
        return self._fmt

    @property
    def rounding(self) -> RoundingMode:
        return self._rounding

    @property
    def uses_fixed_lsb(self) -> bool:
        """Whether this width uses the fixed ``1/2^n`` per-event step."""
        return self._fmt.total_bits <= FIXED_LSB_MAX_BITS

    @property
    def g_min(self) -> float:
        return self._fmt.min_value

    @property
    def g_max(self) -> float:
        """Largest conductance this format stores, capped at the paper's 1.0.

        Formats with integer bits (``Q1.7``, ``Q1.15``) can represent values
        above 1, but Table I fixes ``G_max = 1`` — the integer bit exists so
        1.0 itself is representable.  Narrow formats cannot reach 1; e.g.
        ``Q0.2`` tops out at 0.75 and learns in that reduced range.
        """
        return min(self._fmt.max_value, 1.0)

    def _round(self, values: np.ndarray, rng: Optional[np.random.Generator]) -> np.ndarray:
        res = self._fmt.resolution
        if self._rounding is RoundingMode.TRUNCATE:
            return round_truncate(values, res)
        if self._rounding is RoundingMode.NEAREST:
            return round_nearest(values, res)
        return round_stochastic(values, res, rng)

    def quantize(self, values: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Snap *values* onto the storage grid and clamp into [g_min, g_max]."""
        arr = coerce_float64(values)
        return np.clip(self._round(arr, rng), self.g_min, self.g_max)

    def quantize_delta(
        self, delta: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Quantise a conductance change before the LTP/LTD phase.

        For <= 8-bit formats the magnitude is replaced by one LSB with the
        original sign (Section III-C); for wider formats the computed change
        is rounded onto the grid with the configured rounding option.
        """
        arr = coerce_float64(delta)
        if self.uses_fixed_lsb:
            return np.sign(arr) * self._fmt.resolution
        return self._round(arr, rng)

    def lsb_delta(self) -> float:
        """The fixed per-event conductance step for low-precision learning."""
        return self._fmt.resolution

    def describe(self) -> str:
        return f"{self._fmt} ({self._rounding.value} rounding)"


def make_quantizer(config: QuantizationConfig) -> Union[FloatQuantizer, Quantizer]:
    """Build the quantiser implied by *config* (float or fixed point)."""
    if config.is_floating_point:
        return FloatQuantizer()
    return Quantizer(parse_qformat(config.fmt), config.rounding)
