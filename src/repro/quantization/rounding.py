"""The three rounding options of Section III-C.

All functions snap floating-point arrays onto the grid of multiples of
``resolution`` (one LSB of the active Q-format):

- :func:`round_truncate` — bit truncation, i.e. round toward zero /
  downwards for the unsigned conductances used here;
- :func:`round_nearest` — round to the nearest grid point (ties away from
  zero, matching a hardware half-up rounder);
- :func:`round_stochastic` — stochastic rounding, eq. (8): the probability
  of rounding *up* equals the fractional position between the two
  neighbouring grid points, ``P_up = (x - trunc(x)) * 2^n``.

Inputs may be scalars or arrays; outputs are ``float64`` arrays (or scalars
for scalar input).  None of these functions clamp to a range — range
handling belongs to the quantiser.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.backend import coerce_float64
from repro.errors import QuantizationError

ArrayLike = Union[float, np.ndarray]


def _check_resolution(resolution: float) -> None:
    if not resolution > 0.0:
        raise QuantizationError(f"resolution must be positive, got {resolution!r}")


def round_truncate(values: ArrayLike, resolution: float) -> np.ndarray:
    """Truncate *values* down onto the grid of multiples of *resolution*."""
    _check_resolution(resolution)
    arr = coerce_float64(values)
    return np.floor(arr / resolution) * resolution


def round_nearest(values: ArrayLike, resolution: float) -> np.ndarray:
    """Round *values* to the nearest multiple of *resolution*, ties up."""
    _check_resolution(resolution)
    arr = coerce_float64(values)
    return np.floor(arr / resolution + 0.5) * resolution


def stochastic_round_up_probability(values: ArrayLike, resolution: float) -> np.ndarray:
    """Eq. (8): probability of rounding up for each entry of *values*.

    ``P_up = (x - x_truncated) * 2^n`` where ``2^n = 1/resolution`` — i.e.
    the fractional position of ``x`` between its two neighbouring grid
    points.  Values already on the grid have probability 0.
    """
    _check_resolution(resolution)
    arr = coerce_float64(values)
    scaled = arr / resolution
    return scaled - np.floor(scaled)


def round_stochastic(
    values: ArrayLike, resolution: float, rng: Optional[np.random.Generator]
) -> np.ndarray:
    """Stochastically round *values* onto the grid (eq. 8).

    Each entry rounds up with probability equal to its fractional position
    between grid points and down otherwise, making the rounding unbiased in
    expectation: ``E[round(x)] = x``.
    """
    _check_resolution(resolution)
    if rng is None:
        raise QuantizationError(
            "rounding=stochastic requires a seeded RNG stream: eq. (8) draws "
            "one uniform per rounded value, so pass a generator (e.g. the "
            "'rounding' stream of RngStreams) or set rounding=nearest/"
            "truncate in QuantizationConfig"
        )
    arr = coerce_float64(values)
    down = np.floor(arr / resolution)
    p_up = arr / resolution - down
    draws = rng.random(size=arr.shape)
    return (down + (draws < p_up)) * resolution
