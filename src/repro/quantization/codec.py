"""Integer code-domain kernels for Q-format storage.

A conductance in format ``Qm.n`` is a *code* — the integer ``k`` such that
``G = k * 2^-n``.  The float-simulated quantisation path
(:mod:`repro.quantization.quantizer`) stores the decoded float64 values and
re-snaps them after every update; :class:`QCodec` instead gives the engines
a direct integer representation:

- :meth:`QCodec.encode` / :meth:`QCodec.decode` map between float
  conductances and ``uint8``/``uint16`` codes.  Both directions are *exact*
  for on-grid values: every representable ``k * 2^-n`` (``n <= 15``) is a
  dyadic rational with an exact float64 image, so
  ``decode(encode(g)) == g`` bit for bit whenever ``g`` lies on the grid —
  the invariant the integer engine tier and the checkpoint round-trip rely
  on.
- :meth:`QCodec.delta_codes` is the code-domain image of
  ``Quantizer.quantize_delta``: the fixed-LSB fast path (±1 code for
  formats of 8 total bits or fewer) and, for wider formats, the three
  rounding options with eq. (8) stochastic rounding fused into an integer
  compare-against-random — one uniform draw per *changed* synapse, from
  whatever dedicated stream the caller supplies.

Formats wider than :data:`MAX_CODE_BITS` (16) have no integer storage tier
here; :func:`code_dtype` raises for them and callers fall back to the
float-simulated path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.config.parameters import RoundingMode
from repro.errors import ConfigurationError, QuantizationError
from repro.quantization.qformat import QFormat
from repro.quantization.quantizer import FIXED_LSB_MAX_BITS, Quantizer

#: Widest format the integer code representation serves (``uint16``).
MAX_CODE_BITS = 16


def code_dtype(fmt: QFormat) -> "np.dtype[Any]":
    """The narrowest unsigned storage dtype holding *fmt*'s codes.

    ``uint8`` for formats of 8 total bits or fewer, ``uint16`` up to 16;
    wider formats raise — they stay on the float-simulated path.
    """
    if fmt.total_bits > MAX_CODE_BITS:
        raise QuantizationError(
            f"{fmt} is {fmt.total_bits} bits wide; integer code storage "
            f"supports at most {MAX_CODE_BITS} bits"
        )
    if fmt.total_bits <= 8:
        return np.dtype(np.uint8)
    return np.dtype(np.uint16)


@dataclass(frozen=True)
class QCodec:
    """Precomputed scale factors and kernels for one format + rounding mode.

    ``max_code`` is the code of the quantiser's conductance ceiling
    (``min(fmt.max_value, 1.0)``, the Table I cap), so clipping codes to
    ``[0, max_code]`` is exactly the float path's ``[g_min, g_max]`` clamp.
    """

    fmt: QFormat
    rounding: RoundingMode
    #: ``2^-n`` — the decode scale factor (one LSB).
    resolution: float
    #: ``2^n`` — the encode scale factor (exact float64 power of two).
    inv_resolution: float
    #: Code of the largest storable conductance.
    max_code: int
    #: Unsigned storage dtype (``uint8`` or ``uint16``).
    dtype: "np.dtype[Any]"
    #: Whether updates use the fixed ±1-LSB step (<= 8 total bits).
    fixed_lsb: bool

    @classmethod
    def from_quantizer(cls, quantizer: Quantizer) -> "QCodec":
        """Build the codec matching a fixed-point :class:`Quantizer`."""
        fmt = quantizer.fmt
        resolution = fmt.resolution
        inv_resolution = 1.0 / resolution
        return cls(
            fmt=fmt,
            rounding=quantizer.rounding,
            resolution=resolution,
            inv_resolution=inv_resolution,
            max_code=int(round(quantizer.g_max * inv_resolution)),
            dtype=code_dtype(fmt),
            fixed_lsb=quantizer.uses_fixed_lsb,
        )

    @property
    def code_bits(self) -> int:
        """Storage width of one code in bits (8 or 16)."""
        return int(self.dtype.itemsize) * 8

    # ------------------------------------------------------------------
    # code <-> value kernels
    # ------------------------------------------------------------------

    def encode(
        self,
        values: np.ndarray,
        dtype: Optional["np.dtype[Any]"] = None,
        xp: Any = np,
    ) -> np.ndarray:
        """Float conductances -> integer codes, clipped to ``[0, max_code]``.

        Exact (pure rescaling, no rounding error) for values already on the
        storage grid; off-grid values snap to the nearest code.  *dtype*
        overrides the storage dtype — the float shadow twin passes
        ``float64`` to keep integer-valued codes in float storage.  *xp* is
        the backend array module: conversion must go through the owning
        backend (plain ``numpy.asarray`` silently strips device residency),
        while the arithmetic dispatches on the operands by itself.
        """
        arr = xp.asarray(values, dtype=np.float64)
        codes = np.rint(arr * self.inv_resolution)
        np.clip(codes, 0.0, float(self.max_code), out=codes)
        return codes.astype(self.dtype if dtype is None else dtype)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Integer codes -> float64 conductances (exact: ``k * 2^-n``)."""
        return np.multiply(codes, self.resolution, dtype=np.float64)

    def decode_into(self, codes: np.ndarray, out: np.ndarray) -> np.ndarray:
        """:meth:`decode` writing into a preallocated float64 array."""
        return np.multiply(codes, self.resolution, out=out, dtype=np.float64)

    # ------------------------------------------------------------------
    # code-domain synaptic drive (the integer gather/matmul paths)
    # ------------------------------------------------------------------

    def gather_drive(
        self,
        codes: np.ndarray,
        rows: np.ndarray,
        scale: float,
        out: np.ndarray,
        acc_dtype: "np.dtype[Any]",
    ) -> np.ndarray:
        """Sparse row-gather drive: sum the *rows* of *codes*, scale into *out*.

        The code-domain image of the float kernels' ``(raster @ g) *
        amplitude`` restricted to the spiking rows: the column sum runs in
        *acc_dtype* (``int64`` for integer storage, ``float64`` for the
        shadow twin — single-row and on-grid sums are exact either way) and
        *scale* is the caller's precomputed ``resolution * amplitude``, so
        the one multiply is the only rounding, of the very same real product
        the float path rounds.  The single-row fast path skips the
        reduction; a one-element sum is exact in both dtypes, so the result
        is bit-identical to the general path.
        """
        if rows.size == 1:
            return np.multiply(codes[rows[0]], scale, out=out)
        acc = codes[rows].sum(axis=0, dtype=acc_dtype)
        return np.multiply(acc, scale, out=out)

    def batched_drive(
        self, spikes: np.ndarray, codes: np.ndarray, scale: float, xp: Any = np
    ) -> np.ndarray:
        """Image-parallel drive: ``(spikes @ codes) * scale`` on integer codes.

        *spikes* is a boolean ``(n_images, n_pre)`` raster slice and *codes*
        the frozen ``(n_pre, n_neurons)`` code matrix; the matmul
        accumulates in ``int64`` (no uint8/uint16 wraparound) and the single
        *scale* multiply (``resolution * amplitude``) per presentation step
        is the only rounding.  Code sums stay below ``2^53``, so the result
        is bit-identical to the float path's ``(spikes @ g) * amplitude``
        while moving a quarter (uint16) to an eighth (uint8) of the memory
        traffic through the matmul.

        On numpy-semantics backends (numpy, guard) the accumulation dtype
        rides on the matmul itself; CuPy's ``matmul`` has no ``dtype``
        keyword, so that branch widens the operands to ``int64`` first —
        same exact integer arithmetic, one extra temporary.
        """
        if getattr(xp, "__name__", "numpy").startswith("cupy"):  # pragma: no cover
            acc = spikes.astype(np.int64) @ codes.astype(np.int64)
        else:
            acc = np.matmul(spikes.astype(np.uint8), codes, dtype=np.int64)
        return np.multiply(acc, scale, dtype=np.float64)

    # ------------------------------------------------------------------
    # fused delta rounding (the eq.-8 integer kernel)
    # ------------------------------------------------------------------

    def delta_codes(
        self,
        delta: np.ndarray,
        rng: Optional[Any] = None,
        xp: Any = np,
    ) -> np.ndarray:
        """Code-domain image of ``Quantizer.quantize_delta`` for *delta*.

        Returns an integer-valued float64 array of signed code increments.
        In the fixed-LSB regime the computed magnitude is replaced by
        ``sign(delta)`` — one LSB per event, zero RNG draws (Section
        III-C).  Wider formats scale by ``2^n`` and round: truncate and
        nearest are deterministic; stochastic rounding is eq. (8) as an
        integer compare-against-random, drawing **one uniform per changed
        entry** (``delta != 0``) from *rng* in C order — the quantity the
        float-simulated path spends a full-matrix draw on.  On a device
        backend, pass *xp* plus a :class:`~repro.engine.rng.DeviceRng` so
        draws stay host-ordered while the compare runs on device.
        """
        arr = xp.asarray(delta, dtype=np.float64)
        if self.fixed_lsb:
            return np.sign(arr)
        scaled = arr * self.inv_resolution
        if self.rounding is RoundingMode.TRUNCATE:
            return np.floor(scaled)
        if self.rounding is RoundingMode.NEAREST:
            return np.floor(scaled + 0.5)
        down = np.floor(scaled)
        frac = scaled - down
        changed = np.flatnonzero(arr)
        if changed.size:
            if rng is None:
                raise QuantizationError(
                    "stochastic rounding requires a seeded RNG stream: the "
                    "config selected rounding=stochastic (eq. 8), which "
                    "draws one uniform per changed synapse; pass the "
                    "dedicated 'qrounding' stream (RngStreams.qrounding)"
                )
            draws = rng.random(size=changed.size)
            flat = down.reshape(-1)
            flat[changed] += draws < frac.reshape(-1)[changed]
        return down

    def apply_delta_codes(
        self,
        codes: np.ndarray,
        cols: np.ndarray,
        delta_codes: np.ndarray,
        mask_cols: Optional[np.ndarray] = None,
    ) -> None:
        """Scatter signed code increments onto the *cols* columns of *codes*.

        Generalised over the storage dtype: unsigned-integer storage
        widens to ``int64`` for the add (no wraparound), saturates into
        ``[0, max_code]`` and narrows back; the float shadow twin's
        ``float64`` code array takes the same arithmetic directly.  Both
        produce identical integer values — the dtype-equivalence contract
        of the ``qfused`` tier.  *mask_cols* (connectivity restricted to
        *cols*) zeroes permanently-absent synapses, matching
        ``ConductanceMatrix.apply_delta_columns``.
        """
        if codes.dtype.kind == "u":
            updated = codes[:, cols].astype(np.int64)
            updated += delta_codes.astype(np.int64)
            np.clip(updated, 0, self.max_code, out=updated)
            updated = updated.astype(codes.dtype)
        else:
            updated = codes[:, cols] + delta_codes
            np.clip(updated, 0.0, float(self.max_code), out=updated)
        if mask_cols is not None:
            updated = np.where(mask_cols, updated, 0)
        codes[:, cols] = updated


def require_codec(quantizer: object, engine: str) -> QCodec:
    """The :class:`QCodec` for an integer-native *engine*, or a config error.

    The integer tiers (``qfused``, ``qevent``, ``qbatched``) share the same
    two admission requirements: a fixed-point quantization config, narrow
    enough for the unsigned code storage.  Violations raise
    :class:`~repro.errors.ConfigurationError` naming the engine and the fix.
    """
    if not isinstance(quantizer, Quantizer):
        raise ConfigurationError(
            f"the {engine} engine stores conductances as fixed-point codes "
            f"and needs a Q-format config; set quantization.fmt (e.g. "
            f"fmt='Q1.7') or use a float64-capable engine"
        )
    if quantizer.fmt.total_bits > MAX_CODE_BITS:
        raise ConfigurationError(
            f"{engine} stores codes in at most {MAX_CODE_BITS} bits, but "
            f"quantization.fmt={quantizer.fmt} is "
            f"{quantizer.fmt.total_bits} bits wide; choose a format of "
            f"{MAX_CODE_BITS} bits or fewer, or use a float64-capable engine"
        )
    return QCodec.from_quantizer(quantizer)


def codec_for(quantizer: object) -> Optional[QCodec]:
    """The :class:`QCodec` serving *quantizer*, or ``None``.

    ``None`` when the quantiser is floating point or the format is wider
    than :data:`MAX_CODE_BITS` — the callers' signal to stay on the
    float-simulated path.
    """
    if not isinstance(quantizer, Quantizer):
        return None
    if quantizer.fmt.total_bits > MAX_CODE_BITS:
        return None
    return QCodec.from_quantizer(quantizer)


__all__ = [
    "FIXED_LSB_MAX_BITS",
    "MAX_CODE_BITS",
    "QCodec",
    "code_dtype",
    "codec_for",
    "require_codec",
]
