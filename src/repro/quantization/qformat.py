"""Q-format fixed-point descriptors.

The paper stores synapse conductance in unsigned fixed point written as
``Qm.n``: *m* integer bits and *n* fractional bits (total width ``m + n``).
Table II uses ``Q0.2``, ``Q0.4``, ``Q1.7`` and ``Q1.15``.  A ``QFormat``
knows its representable grid: resolution ``2^-n``, minimum 0 and maximum
``2^m - 2^-n``.  Conductances are clamped onto that grid by the quantiser.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError

_QFORMAT_RE = re.compile(r"^[Qq](\d+)\.(\d+)$")


@dataclass(frozen=True)
class QFormat:
    """An unsigned fixed-point format with ``int_bits`` + ``frac_bits`` bits."""

    int_bits: int
    frac_bits: int

    def __post_init__(self) -> None:
        if self.int_bits < 0:
            raise QuantizationError(f"int_bits must be non-negative, got {self.int_bits}")
        if self.frac_bits < 1:
            raise QuantizationError(f"frac_bits must be at least 1, got {self.frac_bits}")
        if self.total_bits > 32:
            raise QuantizationError(f"total width {self.total_bits} exceeds 32 bits")

    @property
    def total_bits(self) -> int:
        """Total storage width in bits."""
        return self.int_bits + self.frac_bits

    @property
    def resolution(self) -> float:
        """The value of one least-significant bit, ``2^-frac_bits``."""
        return 2.0 ** -self.frac_bits

    @property
    def min_value(self) -> float:
        """Smallest representable value (formats are unsigned)."""
        return 0.0

    @property
    def max_value(self) -> float:
        """Largest representable value, ``2^int_bits - resolution``."""
        return 2.0 ** self.int_bits - self.resolution

    @property
    def num_levels(self) -> int:
        """Number of representable values, ``2^total_bits``."""
        return 1 << self.total_bits

    def __str__(self) -> str:
        return f"Q{self.int_bits}.{self.frac_bits}"

    def clamp(self, values: np.ndarray) -> np.ndarray:
        """Clip *values* into the representable range (no grid snapping)."""
        return np.clip(values, self.min_value, self.max_value)

    def is_representable(self, values: np.ndarray, atol: float = 1e-12) -> np.ndarray:
        """Boolean mask of entries that lie exactly on the format's grid."""
        arr = np.asarray(values, dtype=np.float64)
        in_range = (arr >= self.min_value - atol) & (arr <= self.max_value + atol)
        scaled = arr / self.resolution
        on_grid = np.abs(scaled - np.round(scaled)) <= atol / self.resolution
        return in_range & on_grid

    def grid(self) -> np.ndarray:
        """All representable values in ascending order.

        Only sensible for narrow formats (used by tests and distribution
        plots); refuses to materialise more than 2^16 levels.
        """
        if self.total_bits > 16:
            raise QuantizationError(
                f"refusing to materialise {self.num_levels} grid points for {self}"
            )
        return np.arange(self.num_levels, dtype=np.float64) * self.resolution


def parse_qformat(fmt: str) -> QFormat:
    """Parse a ``"Qm.n"`` string into a :class:`QFormat`.

    Raises :class:`QuantizationError` for malformed strings.
    """
    if not isinstance(fmt, str):
        raise QuantizationError(f"Q-format must be a string, got {type(fmt).__name__}")
    match = _QFORMAT_RE.match(fmt.strip())
    if match is None:
        raise QuantizationError(f"malformed Q-format {fmt!r}; expected e.g. 'Q1.7'")
    return QFormat(int_bits=int(match.group(1)), frac_bits=int(match.group(2)))
