"""Fixed-point arithmetic for low-precision learning (Section III-C).

- :mod:`repro.quantization.qformat` — Q-format descriptors (``Q1.7`` etc.):
  representable range, resolution, grid snapping.
- :mod:`repro.quantization.rounding` — the three rounding options: bit
  truncation, round-to-nearest and stochastic rounding (eq. 8).
- :mod:`repro.quantization.quantizer` — :class:`Quantizer`, the object the
  learning module uses: it owns a format + rounding mode, exposes the
  per-event ``delta_g`` (the fixed ``1/2^n`` LSB for <= 8 total bits) and
  quantises conductance arrays in place.
- :mod:`repro.quantization.codec` — :class:`QCodec`, the integer code-domain
  view of a format for the ``qfused`` engine tier: uint8/uint16 storage,
  exact encode/decode scale factors and eq.-8 rounding fused into integer
  code increments.
"""

from repro.quantization.codec import MAX_CODE_BITS, QCodec, code_dtype, codec_for
from repro.quantization.qformat import QFormat, parse_qformat
from repro.quantization.rounding import (
    round_nearest,
    round_stochastic,
    round_truncate,
    stochastic_round_up_probability,
)
from repro.quantization.quantizer import FloatQuantizer, Quantizer, make_quantizer

__all__ = [
    "MAX_CODE_BITS",
    "QCodec",
    "QFormat",
    "code_dtype",
    "codec_for",
    "parse_qformat",
    "round_nearest",
    "round_stochastic",
    "round_truncate",
    "stochastic_round_up_probability",
    "FloatQuantizer",
    "Quantizer",
    "make_quantizer",
]
