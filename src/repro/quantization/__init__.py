"""Fixed-point arithmetic for low-precision learning (Section III-C).

- :mod:`repro.quantization.qformat` — Q-format descriptors (``Q1.7`` etc.):
  representable range, resolution, grid snapping.
- :mod:`repro.quantization.rounding` — the three rounding options: bit
  truncation, round-to-nearest and stochastic rounding (eq. 8).
- :mod:`repro.quantization.quantizer` — :class:`Quantizer`, the object the
  learning module uses: it owns a format + rounding mode, exposes the
  per-event ``delta_g`` (the fixed ``1/2^n`` LSB for <= 8 total bits) and
  quantises conductance arrays in place.
"""

from repro.quantization.qformat import QFormat, parse_qformat
from repro.quantization.rounding import (
    round_nearest,
    round_stochastic,
    round_truncate,
    stochastic_round_up_probability,
)
from repro.quantization.quantizer import FloatQuantizer, Quantizer, make_quantizer

__all__ = [
    "QFormat",
    "parse_qformat",
    "round_nearest",
    "round_stochastic",
    "round_truncate",
    "stochastic_round_up_probability",
    "FloatQuantizer",
    "Quantizer",
    "make_quantizer",
]
