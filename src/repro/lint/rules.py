"""AST rules R1, R2, R4, R5 and R6: determinism, numerics, exception and
backend hygiene.

Each rule is a :class:`ast.NodeVisitor` over one parsed module.  The rules
are deliberately syntactic — they prove properties of the *source*, not of
a particular run, which is exactly what the engine registry's equivalence
tiers need: a seedless generator is nondeterministic on every path, not
just the ones the test suite happens to execute.

R3 (registry conformance) lives in :mod:`repro.lint.contracts` because it
works by import/inspection of the live registry rather than by parsing.

Suppression: a ``# lint-ok`` comment on the offending line silences every
rule there; ``# lint-ok: R1, R4`` silences only the listed rules.  Use it
for the rare sanctioned exception, never to mute a real hazard.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import PurePosixPath
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.lint.findings import Finding

#: Posix path suffixes where R1 does not apply — the one sanctioned
#: construction site for generators (``RngStreams`` and its salts).
R1_EXEMPT_SUFFIXES: Tuple[str, ...] = ("engine/rng.py",)

#: Directory names whose files count as dtype-strict hot paths for R2.
R2_STRICT_DIRS: FrozenSet[str] = frozenset({"engine", "quantization"})

#: Paths where R2 additionally polices silent float64 *upcasts*: the
#: integer-native kernels (the dense and event-driven code-storage
#: engines, and the batched engine whose qbatched path carries frozen
#: codes) plus the whole quantization layer, where a dtype-less
#: ``np.asarray``/``np.array`` or an ``astype(float)`` quietly promotes
#: uint8/uint16 code arrays back to full-precision floats — the exact
#: round trip the integer tier exists to eliminate.
R2_INT_NATIVE_SUFFIXES: Tuple[str, ...] = (
    "engine/qfused.py",
    "engine/qevent.py",
    "engine/batched.py",
)
R2_INT_NATIVE_DIRS: FrozenSet[str] = frozenset({"quantization"})

_PRAGMA_RE = re.compile(r"#\s*lint-ok(?:\s*:\s*(?P<rules>[A-Za-z0-9,\s]+))?")


def suppressed_rules(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Per-line pragma map: line number -> ``None`` (all rules) or a rule set."""
    out: Dict[int, Optional[FrozenSet[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(
                r.strip().upper() for r in rules.split(",") if r.strip()
            )
    return out


def comment_pragmas(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Like :func:`suppressed_rules` but restricted to real ``#`` comments.

    The suppression map is line-based and therefore also matches pragma
    *text* quoted inside docstrings (this module's own rule docs, say);
    those lines must never be reported as stale pragmas, so the W0 pass
    re-detects pragmas from tokenizer COMMENT tokens only.
    """
    out: Dict[int, Optional[FrozenSet[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA_RE.search(token.string)
            if match is None:
                continue
            rules = match.group("rules")
            if rules is None:
                out[token.start[0]] = None
            else:
                out[token.start[0]] = frozenset(
                    r.strip().upper() for r in rules.split(",") if r.strip()
                )
    except tokenize.TokenError:
        pass  # unterminated construct: fall back to reporting nothing
    return out


def apply_suppressions(
    findings: List[Finding], pragmas: Dict[int, Optional[FrozenSet[str]]]
) -> Tuple[List[Finding], FrozenSet[int]]:
    """Filter *findings* through a pragma map; also return the used lines.

    A pragma line is *used* when it suppressed at least one finding — the
    complement (under the full rule set) is what W0 reports as stale.
    """
    kept: List[Finding] = []
    used: set = set()
    for finding in findings:
        scope = pragmas.get(finding.line, _PRAGMA_MISS)
        if scope is _PRAGMA_MISS or (scope is not None and finding.rule not in scope):
            kept.append(finding)
        else:
            used.add(finding.line)
    return kept, frozenset(used)


#: Sentinel distinguishing "no pragma on this line" from "bare pragma".
_PRAGMA_MISS: FrozenSet[str] = frozenset({"\x00no-pragma"})


class _RuleVisitor(ast.NodeVisitor):
    """Shared plumbing: collects findings tagged with one rule id."""

    rule = ""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []

    def flag(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=self.rule,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
            )
        )


# ---------------------------------------------------------------------------
# R1: explicit, function-scoped randomness
# ---------------------------------------------------------------------------


class R1RandomConstruction(_RuleVisitor):
    """No seedless/module-level ``np.random`` construction, no legacy API.

    Resolves ``np.random.<fn>`` through import aliases (``import numpy as
    np``, ``from numpy import random as npr``, ``from numpy.random import
    default_rng``) so renaming the module does not evade the rule.
    """

    rule = "R1"

    #: np.random attributes that are legitimate to *call* when seeded:
    #: generator/bit-generator constructors and seed containers.  Anything
    #: else on the module is the legacy global-state sampling API.
    ALLOWED = frozenset(
        {
            "default_rng",
            "Generator",
            "SeedSequence",
            "BitGenerator",
            "PCG64",
            "PCG64DXSM",
            "Philox",
            "SFC64",
            "MT19937",
        }
    )
    #: Constructors whose *module-level* execution bakes a generator into
    #: import time, hiding it from seed control.
    GENERATOR_CTORS = frozenset({"default_rng", "Generator", "RandomState"})

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self._depth = 0
        self._np_aliases = {"np", "numpy"}
        self._random_aliases: set = set()
        self._fn_aliases: Dict[str, str] = {}

    # -- import alias tracking ---------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy":
                self._np_aliases.add(alias.asname or "numpy")
            elif alias.name == "numpy.random":
                if alias.asname:
                    self._random_aliases.add(alias.asname)
                else:
                    self._np_aliases.add("numpy")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "numpy":
            for alias in node.names:
                if alias.name == "random":
                    self._random_aliases.add(alias.asname or "random")
        elif node.module == "numpy.random":
            for alias in node.names:
                self._fn_aliases[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    # -- scope tracking ----------------------------------------------
    def _enter_function(self, node: ast.AST) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_FunctionDef = _enter_function
    visit_AsyncFunctionDef = _enter_function
    visit_Lambda = _enter_function

    # -- the rule ----------------------------------------------------
    def _resolve(self, func: ast.expr) -> Optional[str]:
        """The ``np.random`` attribute this call targets, if any."""
        if isinstance(func, ast.Attribute):
            value = func.value
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "random"
                and isinstance(value.value, ast.Name)
                and value.value.id in self._np_aliases
            ):
                return func.attr
            if isinstance(value, ast.Name) and value.id in self._random_aliases:
                return func.attr
        elif isinstance(func, ast.Name):
            return self._fn_aliases.get(func.id)
        return None

    @staticmethod
    def _seedless(node: ast.Call) -> bool:
        args = [
            a
            for a in node.args
            if not (isinstance(a, ast.Constant) and a.value is None)
        ]
        kwargs = [
            k
            for k in node.keywords
            if k.arg == "seed"
            and not (isinstance(k.value, ast.Constant) and k.value.value is None)
        ]
        return not args and not kwargs

    def visit_Call(self, node: ast.Call) -> None:
        fn = self._resolve(node.func)
        if fn is not None:
            if fn == "RandomState":
                self.flag(
                    node,
                    "legacy np.random.RandomState: use np.random.default_rng "
                    "with an explicit seed",
                )
            elif fn == "seed":
                self.flag(
                    node,
                    "np.random.seed mutates hidden global state: seed an "
                    "explicit Generator instead",
                )
            elif fn not in self.ALLOWED:
                self.flag(
                    node,
                    f"np.random.{fn} draws from hidden global state: use an "
                    "explicitly seeded np.random.Generator",
                )
            elif fn == "default_rng" and self._seedless(node):
                self.flag(
                    node,
                    "np.random.default_rng() without a seed: require a "
                    "caller-supplied Generator or derive the seed from "
                    "config/RngStreams",
                )
            elif fn in self.GENERATOR_CTORS and self._depth == 0:
                self.flag(
                    node,
                    f"module-level np.random.{fn} construction: build "
                    "generators inside functions from explicit seeds "
                    "(RngStreams or config)",
                )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# R2: dtype discipline in hot paths
# ---------------------------------------------------------------------------

#: Allocation functions and the positional index their dtype lives at.
_ALLOC_DTYPE_POS = {"zeros": 1, "ones": 1, "empty": 1, "full": 2}

#: Names array modules are conventionally bound to (numpy, the ``xp``
#: backend indirection, CuPy).  ``*_like`` allocators inherit their dtype
#: from the prototype and are exempt.
_ARRAY_MODULES = frozenset({"np", "numpy", "xp", "cp", "cupy"})


def _dtype_tag(expr: ast.expr) -> Optional[str]:
    """``"float32"``/``"float64"`` when *expr* names that dtype, else None."""
    if isinstance(expr, ast.Attribute) and expr.attr in ("float32", "float64"):
        return expr.attr
    if isinstance(expr, ast.Constant) and expr.value in ("float32", "float64"):
        return str(expr.value)
    return None


def _expression_precision(node: ast.AST) -> Optional[str]:
    """The float precision *node* explicitly pins its result to, if any."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        if (
            isinstance(func.value, ast.Name)
            and func.value.id in _ARRAY_MODULES
            and func.attr in ("float32", "float64")
        ):
            return func.attr
        if func.attr == "astype" and node.args:
            return _dtype_tag(node.args[0])
    for kw in node.keywords:
        if kw.arg == "dtype":
            return _dtype_tag(kw.value)
    return None


#: ``astype`` arguments that silently select a platform-default width.
_BUILTIN_CAST_NAMES = frozenset({"float", "int"})


def _builtin_cast_tag(expr: ast.expr) -> Optional[str]:
    """``"float"``/``"int"`` when *expr* is the builtin or its string name."""
    if isinstance(expr, ast.Name) and expr.id in _BUILTIN_CAST_NAMES:
        return expr.id
    if isinstance(expr, ast.Constant) and expr.value in _BUILTIN_CAST_NAMES:
        return str(expr.value)
    return None


class R2DtypeDiscipline(_RuleVisitor):
    """Allocations in hot paths must pin a dtype; no 32/64-bit mixing.

    With *int_native* set (the qfused kernel and the quantization layer),
    additionally flags silent float64 upcasts: dtype-less
    ``np.asarray``/``np.array`` conversions and ``astype(float)`` /
    ``astype(int)`` casts, which widen integer code arrays to a
    platform-default dtype without saying so.
    """

    rule = "R2"

    def __init__(self, path: str, int_native: bool = False) -> None:
        super().__init__(path)
        self._seen_binops: set = set()
        self._int_native = int_native

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in _ARRAY_MODULES
        ):
            dtype_pos = _ALLOC_DTYPE_POS.get(func.attr)
            if (
                dtype_pos is not None
                and len(node.args) <= dtype_pos
                and not any(kw.arg == "dtype" for kw in node.keywords)
            ):
                self.flag(
                    node,
                    f"{func.value.id}.{func.attr}(...) without an explicit "
                    "dtype in an engine/quantization hot path: pin the dtype "
                    "so precision does not drift with numpy defaults",
                )
            if (
                self._int_native
                and func.attr in ("asarray", "array")
                and len(node.args) <= 1
                and not any(kw.arg == "dtype" for kw in node.keywords)
            ):
                self.flag(
                    node,
                    f"{func.value.id}.{func.attr}(...) without an explicit "
                    "dtype in an integer-native path: the conversion silently "
                    "promotes Q-format code arrays (pass dtype=...)",
                )
        if self._int_native and isinstance(func, ast.Attribute) and func.attr == "astype":
            tag = _builtin_cast_tag(node.args[0]) if node.args else None
            if tag is not None:
                self.flag(
                    node,
                    f"astype({tag}) in an integer-native path selects the "
                    f"platform-default width (a silent float64/int64 upcast): "
                    f"name the numpy dtype explicitly",
                )
        self.generic_visit(node)

    def visit_BinOp(self, node: ast.BinOp) -> None:
        # Flag only the outermost expression of a mixed-precision chain.
        if id(node) not in self._seen_binops:
            precisions = set()
            for sub in ast.walk(node):
                if isinstance(sub, ast.BinOp):
                    self._seen_binops.add(id(sub))
                tag = _expression_precision(sub)
                if tag is not None:
                    precisions.add(tag)
            if {"float32", "float64"} <= precisions:
                self.flag(
                    node,
                    "implicit float32/float64 mixing in one expression: cast "
                    "both operands to a single explicit dtype",
                )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# R4: default-argument hygiene
# ---------------------------------------------------------------------------

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_BUILTINS = frozenset({"list", "dict", "set", "bytearray"})
_MUTABLE_NP_CTORS = frozenset({"array", "zeros", "ones", "empty", "full"})


def _allows_none(annotation: ast.expr) -> bool:
    text = ast.unparse(annotation)
    return (
        "Optional" in text
        or "None" in text
        or text in ("Any", "typing.Any", "object")
    )


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _MUTABLE_BUILTINS:
            return True
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in _ARRAY_MODULES
            and func.attr in _MUTABLE_NP_CTORS
        ):
            return True
    return False


class R4DefaultArguments(_RuleVisitor):
    """Mutable defaults and ``x: T = None`` mis-annotations."""

    rule = "R4"

    def _check_one(self, arg: ast.arg, default: ast.expr) -> None:
        if _is_mutable_default(default):
            self.flag(
                default,
                f"mutable default for parameter {arg.arg!r}: default to None "
                "and construct inside the function",
            )
        elif (
            isinstance(default, ast.Constant)
            and default.value is None
            and arg.annotation is not None
            and not _allows_none(arg.annotation)
        ):
            self.flag(
                arg,
                f"parameter {arg.arg!r} is annotated "
                f"{ast.unparse(arg.annotation)!r} but defaults to None: "
                "annotate Optional[...]",
            )

    def _check_function(self, node: ast.AST) -> None:
        args = node.args  # type: ignore[attr-defined]
        positional = list(args.posonlyargs) + list(args.args)
        defaults = list(args.defaults)
        for arg, default in zip(positional[len(positional) - len(defaults):], defaults):
            self._check_one(arg, default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                self._check_one(arg, default)
        self.generic_visit(node)

    visit_FunctionDef = _check_function
    visit_AsyncFunctionDef = _check_function


# ---------------------------------------------------------------------------
# R5: exception-handling hygiene
# ---------------------------------------------------------------------------

#: Directory whose modules may catch broadly: the fault-tolerance layer is
#: the sanctioned isolation boundary (worker cells, degradation, injected
#: faults must be containable whatever their type).
R5_EXEMPT_DIRS: FrozenSet[str] = frozenset({"resilience"})

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _names_broad_exception(expr: ast.expr) -> bool:
    """Whether *expr* (an ``except`` clause type) names Exception itself."""
    if isinstance(expr, ast.Name):
        return expr.id in _BROAD_EXCEPTIONS
    if isinstance(expr, ast.Attribute):
        return expr.attr in _BROAD_EXCEPTIONS
    if isinstance(expr, ast.Tuple):
        return any(_names_broad_exception(el) for el in expr.elts)
    return False


class R5ExceptionHygiene(_RuleVisitor):
    """No bare ``except:`` / blanket ``except Exception`` handlers.

    A handler that swallows every exception hides real defects (a typo'd
    attribute reads as "corrupt checkpoint") and, for bare ``except:``,
    even ``KeyboardInterrupt``.  Recovery code must name what it expects.
    The ``repro.resilience`` package is exempt — fault isolation boundaries
    there must, by design, contain arbitrary failures — and individual
    sanctioned sites elsewhere carry a ``# lint-ok: R5`` pragma.  Handlers
    whose last statement is a bare ``raise`` (cleanup-then-rethrow, the
    atomic-write pattern) swallow nothing and are not flagged.
    """

    rule = "R5"

    @staticmethod
    def _reraises(node: ast.ExceptHandler) -> bool:
        return bool(
            node.body
            and isinstance(node.body[-1], ast.Raise)
            and node.body[-1].exc is None
        )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._reraises(node):
            self.generic_visit(node)
            return
        if node.type is None:
            self.flag(
                node,
                "bare 'except:' catches everything including KeyboardInterrupt "
                "and SystemExit: name the exception types this handler expects",
            )
        elif _names_broad_exception(node.type):
            self.flag(
                node,
                "blanket 'except Exception' outside repro.resilience: catch "
                "the specific error types, or move the isolation boundary "
                "into the resilience package (pragma 'lint-ok: R5' for "
                "sanctioned sites)",
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# R6: backend discipline in backend-generic kernels
# ---------------------------------------------------------------------------

#: Modules written against the ``xp`` array module of
#: :mod:`repro.backend.ops`: hot-path kernels (and the helpers they call
#: with device-resident arrays) where any array created or converted via
#: numpy directly would be pinned to the host no matter which backend the
#: kernel runs on.
R6_BACKEND_GENERIC_SUFFIXES: Tuple[str, ...] = (
    "engine/fused.py",
    "engine/event_train.py",
    "engine/qfused.py",
    "engine/qevent.py",
    "engine/batched.py",
    "engine/plasticity.py",
    "quantization/codec.py",
    "encoding/poisson.py",
    "encoding/periodic.py",
)

#: numpy functions that materialise or convert arrays *on the host*.
#: Ufuncs and ``*_like`` constructors dispatch through the array protocols
#: (``__array_ufunc__`` / ``__array_function__``) and follow their
#: operands' backend; these do not — ``np.asarray(device_array)`` silently
#: copies to a plain host ndarray, the exact bug class the guard backend
#: exists to catch.
R6_HOST_CREATION_FNS: FrozenSet[str] = frozenset(
    {
        "array",
        "asarray",
        "ascontiguousarray",
        "asfortranarray",
        "empty",
        "zeros",
        "ones",
        "full",
        "arange",
        "linspace",
        "eye",
        "identity",
        "frombuffer",
        "fromiter",
        "fromfunction",
    }
)


class R6BackendDiscipline(_RuleVisitor):
    """No direct numpy array creation/conversion in backend-generic code.

    The hazard: numpy's creation and conversion functions bypass the
    dispatch protocols, so in a kernel that may hold device-resident
    arrays they either pin new state to the host or — the silent failure
    mode — strip a device array's residency without an error, poisoning
    the next ufunc (a BackendError under the guard backend, an implicit
    transfer or crash under CuPy).  Route them through the kernel's ``xp``
    module or the ``Ops`` converters.  Host-side arrays the kernel
    genuinely wants (rasters bound for host plasticity, index scratch,
    timer exports) carry a ``# lint-ok: R6`` pragma naming the intent.
    """

    rule = "R6"

    def __init__(self, path: str) -> None:
        super().__init__(path)
        self._np_aliases = {"np", "numpy"}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "numpy":
                self._np_aliases.add(alias.asname or "numpy")
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in self._np_aliases
            and func.attr in R6_HOST_CREATION_FNS
        ):
            self.flag(
                node,
                f"{func.value.id}.{func.attr}(...) in a backend-generic "
                "kernel creates/converts on the host without dispatching "
                "to the active backend: use the kernel's xp module or the "
                "Ops converters (to_device/to_host), or mark a deliberate "
                "host-side array with '# lint-ok: R6'",
            )
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# per-module driver
# ---------------------------------------------------------------------------


def _r1_applies(path: PurePosixPath) -> bool:
    return not str(path).endswith(R1_EXEMPT_SUFFIXES)


def _r2_applies(path: PurePosixPath) -> bool:
    return bool(R2_STRICT_DIRS.intersection(path.parts))


def _r2_int_native(path: PurePosixPath) -> bool:
    return str(path).endswith(R2_INT_NATIVE_SUFFIXES) or bool(
        R2_INT_NATIVE_DIRS.intersection(path.parts)
    )


def _r5_applies(path: PurePosixPath) -> bool:
    return not R5_EXEMPT_DIRS.intersection(path.parts)


def _r6_applies(path: PurePosixPath) -> bool:
    return str(path).endswith(R6_BACKEND_GENERIC_SUFFIXES)


def check_module_raw(tree: ast.AST, path: str) -> List[Finding]:
    """Run every syntactic rule over one parsed module, pragma-blind.

    *path* is the display path (posix separators); it decides rule
    applicability (R1 exemption for ``engine/rng.py``, R2 scoping to
    engine/quantization directories) and is stamped into the findings.
    The runner applies pragma suppression afterwards so it can also track
    which pragmas were actually used (the W0 stale-pragma check).
    """
    posix = PurePosixPath(path)
    visitors: List[_RuleVisitor] = [R4DefaultArguments(path)]
    if _r1_applies(posix):
        visitors.append(R1RandomConstruction(path))
    if _r2_applies(posix):
        visitors.append(R2DtypeDiscipline(path, int_native=_r2_int_native(posix)))
    if _r5_applies(posix):
        visitors.append(R5ExceptionHygiene(path))
    if _r6_applies(posix):
        visitors.append(R6BackendDiscipline(path))

    findings: List[Finding] = []
    for visitor in visitors:
        visitor.visit(tree)
        findings.extend(visitor.findings)
    return sorted(findings, key=Finding.sort_key)


def check_module(tree: ast.AST, source: str, path: str) -> List[Finding]:
    """Run every syntactic rule over one parsed module, pragmas applied."""
    findings, _ = apply_suppressions(
        check_module_raw(tree, path), suppressed_rules(source)
    )
    return sorted(findings, key=Finding.sort_key)
