"""R3: engine-registry contract conformance, by import and inspection.

The registry (:mod:`repro.engine.registry`) stores *lazy* ``"module:Class"``
factory paths, so a typo or a capability/implementation mismatch only
surfaces when that engine is first instantiated — possibly deep inside a
training run.  This checker front-loads the failure: it resolves every
registered factory, verifies the class against the
:class:`~repro.engine.presentation.PresentationEngine` protocol and checks
that the declared capability record matches what the class actually
implements.  Nothing is simulated; no network is constructed.
"""

from __future__ import annotations

import inspect
from importlib import import_module
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

from repro.lint.findings import Finding


def _location(cls: type, fallback: str) -> Tuple[str, int]:
    """Display path and line of *cls*'s definition, best effort."""
    try:
        raw = inspect.getsourcefile(cls)
        line = inspect.getsourcelines(cls)[1]
    except (OSError, TypeError):
        return fallback, 1
    if raw is None:
        return fallback, 1
    path = Path(raw)
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix(), line
    except ValueError:
        return path.as_posix(), line


def check_engine_contracts(specs: Optional[Iterable] = None) -> List[Finding]:
    """R3 findings for *specs* (default: every registered engine)."""
    from repro.engine.presentation import PresentationEngine
    from repro.engine.registry import Equivalence, available_engines, get_engine_spec

    if specs is None:
        specs = [get_engine_spec(name) for name in available_engines()]

    findings: List[Finding] = []
    for spec in specs:
        findings.extend(_check_spec(spec, PresentationEngine, Equivalence))
    return findings


def _check_spec(spec, base: type, equivalence_enum: type) -> List[Finding]:
    findings: List[Finding] = []

    def flag(message: str, path: str, line: int = 1) -> None:
        findings.append(
            Finding(
                rule="R3",
                path=path,
                line=line,
                col=1,
                message=f"engine {spec.name!r}: {message}",
            )
        )

    module_name, _, attr = spec.factory.partition(":")
    if not module_name or not attr:
        flag(
            f"malformed factory path {spec.factory!r}; expected 'module:Class'",
            spec.factory or "<registry>",
        )
        return findings

    try:
        module = import_module(module_name)
    except Exception as err:  # lint-ok: R5 — import errors are exactly what R3 catches
        flag(f"factory module {module_name!r} failed to import: {err}", module_name)
        return findings

    cls = getattr(module, attr, None)
    if cls is None:
        flag(f"factory module {module_name!r} has no attribute {attr!r}", module_name)
        return findings

    path, line = _location(cls if isinstance(cls, type) else type(cls), module_name)

    def cflag(message: str) -> None:
        flag(message, path, line)

    if not (isinstance(cls, type) and issubclass(cls, base)):
        cflag("factory target does not subclass PresentationEngine")
        return findings

    if cls.name != spec.name:
        cflag(
            f"class {cls.__name__} advertises name {cls.name!r} but is "
            f"registered as {spec.name!r}"
        )

    implements_run = cls.run is not base.run
    if spec.supports_learning and not implements_run:
        cflag("declares supports_learning=True but does not implement run()")
    if implements_run and not spec.supports_learning:
        cflag(
            "implements run() but declares supports_learning=False; "
            "either drop the override or declare the capability"
        )
    if spec.supports_batch and cls.collect_responses is base.collect_responses:
        cflag(
            "declares supports_batch=True but does not override "
            "collect_responses() with a batch implementation"
        )

    if not isinstance(spec.equivalence, equivalence_enum):
        cflag(
            f"equivalence must be an Equivalence tier, got {spec.equivalence!r}"
        )
    if not spec.backends or not all(isinstance(b, str) and b for b in spec.backends):
        cflag("backends must be a non-empty tuple of backend names")
    if not spec.precisions or not all(
        isinstance(p, str) and p for p in spec.precisions
    ):
        cflag("precisions must be a non-empty tuple of dtype names")
    if not spec.summary:
        cflag("summary must be a non-empty capability description")
    return findings
