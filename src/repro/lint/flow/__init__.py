"""Interprocedural dataflow analysis: rules R7, R8 and R9.

The syntactic rules (:mod:`repro.lint.rules`) prove single-statement
properties; this package proves *flow* properties across call chains.  It
works in two phases:

1. **Extraction** (:mod:`repro.lint.flow.summary`) lowers each module's AST
   into a compact, JSON-serialisable :class:`ModuleSummary`: per-function
   statement IR restricted to the facts the lattices care about, call sites
   with best-effort callee references, RNG-stream consumption sites, and
   the module-level declarations the R9 pass reads from ``engine/rng.py``.
   Extraction is the expensive part and is what the content-hash cache
   (:mod:`repro.lint.flow.cache`) memoises per file.

2. **Propagation** (:mod:`repro.lint.flow.width`, ``residency``,
   ``rngflow``) runs whole-program fixpoints over the summaries:

   - **R7** (integer width): uint8/uint16 Q-format code values are traced
     through widening arithmetic; a widened value stored back into narrow
     code storage — or re-narrowed with ``astype`` — without passing
     through a saturating ``clip`` is flagged.
   - **R8** (device residency): ``Ops``-owned (``xp``-created or
     ``to_device``-uploaded) arrays are traced through calls; reaching a
     host-only conversion (``np.asarray`` and friends, which silently strip
     residency — the guard backend's documented blind spot) is flagged,
     including transitively through helper functions R6 cannot see.
   - **R9** (RNG-stream provenance): every named ``RngStreams`` consumer
     site is checked against the ``STREAM_CONSUMERS`` manifest declared in
     ``engine/rng.py``; undeclared consumers, unknown stream names, dead
     streams and draw-parity asymmetries between engine tiers declared
     equivalent (``PARITY_GROUPS``) are flagged.

Soundness limits are documented in DESIGN.md: the analysis is
flow-insensitive within a function (values join across branches), method
calls resolve by attribute name against the analyzed corpus, and dynamic
dispatch/reflection are invisible.  It over-approximates where cheap
(may-analysis: a value that is narrow on *some* path is treated as narrow)
and under-approximates where resolution fails, trading completeness for
zero false positives on the live tree.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.lint.findings import Finding
from repro.lint.flow.residency import check_residency
from repro.lint.flow.rngflow import check_rng_provenance
from repro.lint.flow.summary import (
    SUMMARY_FORMAT_VERSION,
    ModuleSummary,
    extract_summary,
)
from repro.lint.flow.width import check_width

__all__ = [
    "SUMMARY_FORMAT_VERSION",
    "ModuleSummary",
    "analyze_flow",
    "extract_summary",
]


def analyze_flow(summaries: Sequence[ModuleSummary]) -> List[Finding]:
    """Run the three interprocedural passes over one module corpus.

    *summaries* is the full set of modules analyzed together (one whole
    program); the passes share nothing but the corpus, so their findings
    are simply concatenated and sorted.
    """
    corpus: Dict[str, ModuleSummary] = {s.path: s for s in summaries}
    findings: List[Finding] = []
    findings.extend(check_width(corpus))
    findings.extend(check_residency(corpus))
    findings.extend(check_rng_provenance(corpus))
    return sorted(findings, key=Finding.sort_key)


def flow_function_count(summaries: Sequence[ModuleSummary]) -> Tuple[int, int]:
    """(modules, functions) covered — the report's flow coverage counters."""
    return len(summaries), sum(len(s.functions) for s in summaries)
