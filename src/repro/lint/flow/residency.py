"""R8 — device-residency flow: Ops-owned arrays must not hit host sinks.

One atom, ``DEVICE``: the value may be an array owned by a backend
:class:`~repro.backend.ops.Ops` (created through its ``xp`` module or
uploaded with ``to_device``).  The guard backend is the runtime ground
truth this pass must agree with: ``GuardArray`` is an ndarray subclass
whose documented blind spot is the ``np.asarray`` conversion family,
which does **not** dispatch ``__array_function__`` and silently strips
residency instead of raising.  R6 already rejects *direct* ``np.``
creation/conversion calls inside backend-generic kernels; R8 extends the
same discipline transitively — a device array handed through any chain of
analyzed calls into ``np.asarray``/``np.array``/``np.ascontiguousarray``/
``np.asfortranarray`` is flagged at the sink.

``ops.to_host(x)`` / ``asnumpy(x)`` are the sanctioned crossings and
strip the atom; everything else (arithmetic, views, xp calls, unresolved
method calls) propagates it, since backend arrays survive generic numpy
ufuncs via ``__array_function__``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.lint.findings import Finding
from repro.lint.flow.lattices import BOT, Interp, Value, _Ctx, join
from repro.lint.flow.summary import ModuleSummary

DEVICE = "DEVICE"

_DEVICE_VALUE: Value = frozenset({DEVICE})

#: numpy conversions that silently strip ``GuardArray`` residency.
HOST_SINK_FNS = frozenset(
    {"array", "asarray", "ascontiguousarray", "asfortranarray"}
)

#: Sanctioned device->host crossings (drop the atom).
_HOST_CROSSING_METHODS = frozenset({"to_host", "_to_host", "asnumpy", "tolist", "item"})


class ResidencyInterp(Interp):
    rule = "R8"

    # -- atom propagation ----------------------------------------------

    def hook_bin(self, operands: List[Value], ctx: _Ctx) -> Value:
        return join(*operands)

    def hook_attr(self, base: Value, attr: str, ctx: _Ctx) -> Value:
        # Array attribute reads (``.T``, ``.flat``) stay on device; scalar
        # metadata (``.shape``, ``.size``) does not carry residency.
        if attr in ("shape", "size", "ndim", "nbytes", "itemsize", "is_host"):
            return BOT
        return base

    # -- calls ---------------------------------------------------------

    def hook_call(
        self,
        callee: List[Any],
        args: List[Value],
        kwargs: Dict[str, Value],
        arg_descs: List[Any],
        kwarg_descs: Dict[str, Any],
        line: int,
        col: int,
        ctx: _Ctx,
    ) -> Optional[Value]:
        kind = callee[0]
        if kind == "xp":
            # Anything produced by the ops-owned array module is resident.
            return _DEVICE_VALUE
        if kind == "np":
            name = callee[1]
            incoming = join(*args) | join(*kwargs.values()) if (args or kwargs) else BOT
            if name in HOST_SINK_FNS and DEVICE in incoming:
                self.report(
                    ctx, line, col,
                    f"device-resident array may reach host-only np.{name} "
                    "(silently strips backend residency; use ops.to_host "
                    "at the boundary)",
                )
                return BOT
            # Generic numpy ufuncs dispatch __array_function__ and keep
            # the array on its backend.
            return incoming & _DEVICE_VALUE
        if kind == "method":
            name = callee[2]
            if name == "to_device":
                return _DEVICE_VALUE
            if name in _HOST_CROSSING_METHODS:
                return BOT
            return None
        return None

    def hook_opaque_call(
        self,
        callee: List[Any],
        recv: Value,
        args: List[Value],
        kwargs: Dict[str, Value],
        ctx: _Ctx,
    ) -> Value:
        # Unresolved method calls on device arrays (reductions, views)
        # conservatively stay on device.
        if callee[0] == "method" and DEVICE in recv:
            return _DEVICE_VALUE
        return BOT


def check_residency(corpus: Dict[str, ModuleSummary]) -> List[Finding]:
    """Run R8 over one whole-program corpus."""
    return ResidencyInterp(corpus).run()
