"""Per-module fact extraction: AST -> serialisable dataflow IR.

One :class:`ModuleSummary` holds everything the interprocedural passes
need from one source file, in a compact JSON-serialisable form so the
content-hash cache can skip re-parsing unchanged files:

- every function/method lowered to an ordered list of **IR statements**
  over **expression descriptors** — only the shapes the width/residency
  lattices interpret (names, attributes, subscripts, arithmetic, calls
  with best-effort callee references, dtype expressions); everything else
  collapses to ``["unknown"]``;
- **RNG consumption sites**: each ``<x>.rngs.<stream>`` attribute access,
  ``.get("stream")`` / ``.device_stream("stream")`` call and
  ``.batched_eval()`` call, with its enclosing function and whether it
  sits under a conditional;
- the **R9 declarations** (``STREAM_NAMES``, ``STREAM_CONSUMERS``,
  ``PARITY_GROUPS``, ``RESERVED_STREAMS``) when the module is an
  ``engine/rng.py``;
- import tables (numpy aliases, from-imports) for callee resolution.

Descriptor grammar (plain lists, first element is the tag)::

    ["name", ident]            local variable read
    ["selfattr", attr]         self.<attr> read
    ["attr", base, attr]       attribute read on a lowered base
    ["sub", base]              subscript read (views keep dtype/residency)
    ["bin", [operands]]        arithmetic / comparison / boolean mixing
    ["ifexp", [a, b]]          conditional expression (join of branches)
    ["coll", [items]]          tuple/list display (argument containers)
    ["call", callee, args, kwargs, line, col]
    ["dtype", "narrow"|"wide"] recognised dtype literal (np.uint8, ...)
    ["dtypeof", base]          <base>.dtype
    ["const"] / ["unknown"]

    callee ::= ["np", fn] | ["xp", fn] | ["func", name]
             | ["method", recv_desc, name]

Statements::

    ["assign", [targets], value, line, col, weak]
    ["ret", value, line, col]
    ["expr", value, line, col]          (bare call statements)

``weak`` is true for assignments under a branch or loop body: those join
into the target (the other path may have left a different value), while
top-level rebinds replace it — which is what lets ``x = ops.to_host(x)``
genuinely kill a device atom.

    target ::= ["name", x] | ["selfattr", a]
             | ["substore", base_desc] | ["attrstore", base_desc, attr]

Lowering is order-preserving but flow-insensitive: branch and loop bodies
are flattened in source order, and the interpreters run each function body
twice so loop-carried values reach their join.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Bump whenever the IR shapes or extraction semantics change: cache
#: entries carrying an older version are discarded, not misread.
SUMMARY_FORMAT_VERSION = 1

#: Dtype literals the width lattice treats as narrow code storage.
NARROW_DTYPES = frozenset({"uint8", "uint16"})

#: Dtype literals that widen a code array past its declared storage.
WIDE_DTYPES = frozenset(
    {
        "int16", "int32", "int64", "intp", "longlong",
        "float16", "float32", "float64", "double", "single", "half",
    }
)

#: ``RngStreams`` API attributes that are not stream names.
RNG_API_ATTRS = frozenset(
    {
        "state_dict", "load_state_dict", "reseed", "seed",
        "get", "device_stream", "batched_eval",
    }
)

#: Names that bind an ``RngStreams`` bundle by convention.
_RNGS_NAMES = frozenset({"rngs", "_rngs", "rng_streams"})

#: Module-level constants the R9 pass reads from ``engine/rng.py``.
RNG_DECLARATION_NAMES = (
    "STREAM_NAMES",
    "STREAM_CONSUMERS",
    "PARITY_GROUPS",
    "RESERVED_STREAMS",
)


@dataclass
class FunctionSummary:
    """One function or method lowered to the dataflow IR."""

    qualname: str          #: module-relative ("f" or "Class.method")
    line: int
    params: List[str]      #: positional-or-keyword names, ``self`` stripped
    is_method: bool
    stmts: List[Any] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "params": self.params,
            "is_method": self.is_method,
            "stmts": self.stmts,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=data["qualname"],
            line=data["line"],
            params=list(data["params"]),
            is_method=bool(data["is_method"]),
            stmts=data["stmts"],
        )


@dataclass
class RngSite:
    """One consumption site of a named RNG stream."""

    stream: str
    line: int
    col: int
    function: Optional[str]   #: enclosing function qualname, None at module level
    conditional: bool         #: under an ``if``/``while``/``try`` guard
    via: str                  #: "attr" | "get" | "device_stream" | "batched_eval"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "stream": self.stream,
            "line": self.line,
            "col": self.col,
            "function": self.function,
            "conditional": self.conditional,
            "via": self.via,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RngSite":
        return cls(
            stream=data["stream"],
            line=data["line"],
            col=data["col"],
            function=data["function"],
            conditional=bool(data["conditional"]),
            via=data["via"],
        )


@dataclass
class ModuleSummary:
    """All extracted facts for one module."""

    path: str
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    rng_sites: List[RngSite] = field(default_factory=list)
    #: R9 declarations: name -> {"value": literal, "line": int}.
    declarations: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: local alias -> (module, name) for ``from m import n [as a]``.
    from_imports: Dict[str, List[str]] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "format": SUMMARY_FORMAT_VERSION,
            "path": self.path,
            "functions": {q: f.as_dict() for q, f in self.functions.items()},
            "rng_sites": [s.as_dict() for s in self.rng_sites],
            "declarations": self.declarations,
            "from_imports": self.from_imports,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleSummary":
        return cls(
            path=data["path"],
            functions={
                q: FunctionSummary.from_dict(f)
                for q, f in data["functions"].items()
            },
            rng_sites=[RngSite.from_dict(s) for s in data["rng_sites"]],
            declarations=data["declarations"],
            from_imports={k: list(v) for k, v in data["from_imports"].items()},
        )


# ---------------------------------------------------------------------------
# expression lowering
# ---------------------------------------------------------------------------


class _Lowerer:
    """Lowers one function body; shared import tables come from the module."""

    def __init__(self, np_aliases: frozenset) -> None:
        self.np_aliases = np_aliases
        #: Names locally bound to an ``Ops.xp`` array module.
        self.xp_names = {"xp"}
        #: Nesting depth of branch/loop bodies (weak-update regions).
        self._branch_depth = 0

    # -- expressions --------------------------------------------------

    def lower(self, node: ast.expr) -> List[Any]:
        if isinstance(node, ast.Name):
            return ["name", node.id]
        if isinstance(node, ast.Attribute):
            return self._lower_attribute(node)
        if isinstance(node, ast.Subscript):
            return ["sub", self.lower(node.value)]
        if isinstance(node, ast.BinOp):
            return ["bin", [self.lower(node.left), self.lower(node.right)]]
        if isinstance(node, ast.UnaryOp):
            return self.lower(node.operand)
        if isinstance(node, ast.Compare):
            return ["bin", [self.lower(node.left)] + [self.lower(c) for c in node.comparators]]
        if isinstance(node, ast.BoolOp):
            return ["bin", [self.lower(v) for v in node.values]]
        if isinstance(node, ast.IfExp):
            return ["ifexp", [self.lower(node.body), self.lower(node.orelse)]]
        if isinstance(node, ast.Call):
            return self._lower_call(node)
        if isinstance(node, (ast.Tuple, ast.List)):
            return ["coll", [self.lower(el) for el in node.elts]]
        if isinstance(node, ast.Constant):
            return ["const"]
        if isinstance(node, ast.Starred):
            return self.lower(node.value)
        if isinstance(node, ast.NamedExpr):
            return self.lower(node.value)
        return ["unknown"]

    def _lower_attribute(self, node: ast.Attribute) -> List[Any]:
        # Recognised dtype literals first: np.uint8 -> ["dtype", "narrow"].
        base = node.value
        if isinstance(base, ast.Name) and base.id in self.np_aliases:
            if node.attr in NARROW_DTYPES:
                return ["dtype", "narrow"]
            if node.attr in WIDE_DTYPES:
                return ["dtype", "wide"]
        if node.attr == "dtype":
            return ["dtypeof", self.lower(base)]
        if isinstance(base, ast.Name) and base.id == "self":
            return ["selfattr", node.attr]
        return ["attr", self.lower(base), node.attr]

    def _lower_callee(self, func: ast.expr) -> List[Any]:
        if isinstance(func, ast.Name):
            return ["func", func.id]
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id in self.np_aliases:
                    return ["np", func.attr]
                if base.id in self.xp_names:
                    return ["xp", func.attr]
            # ops.xp.zeros / self._ops.xp.zeros: attribute chain ending .xp
            if isinstance(base, ast.Attribute) and base.attr == "xp":
                return ["xp", func.attr]
            return ["method", self.lower(base), func.attr]
        return ["method", ["unknown"], "<dynamic>"]

    def _lower_call(self, node: ast.Call) -> List[Any]:
        callee = self._lower_callee(node.func)
        args = [self.lower(a) for a in node.args]
        kwargs: Dict[str, Any] = {}
        for kw in node.keywords:
            if kw.arg is not None:
                kwargs[kw.arg] = self.lower(kw.value)
        # Builtin width-erasing casts inside dtype positions: float / int.
        if callee == ["func", "float"] or callee == ["func", "int"]:
            pass  # result is a scalar; lowered as a call, evaluated by passes
        return ["call", callee, args, kwargs, node.lineno, node.col_offset + 1]

    # -- statements ---------------------------------------------------

    def lower_target(self, node: ast.expr) -> Optional[List[Any]]:
        if isinstance(node, ast.Name):
            return ["name", node.id]
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return ["selfattr", node.attr]
            return ["attrstore", self.lower(node.value), node.attr]
        if isinstance(node, ast.Subscript):
            return ["substore", self.lower(node.value)]
        return None

    def lower_body(self, body: List[ast.stmt], out: List[Any]) -> None:
        for stmt in body:
            self.lower_stmt(stmt, out)

    def lower_stmt(self, node: ast.stmt, out: List[Any]) -> None:
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._lower_assign(node, out)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                out.append(["ret", self.lower(node.value), node.lineno, node.col_offset + 1])
        elif isinstance(node, ast.Expr):
            if isinstance(node.value, ast.Call):
                out.append(
                    ["expr", self.lower(node.value), node.lineno, node.col_offset + 1]
                )
        elif isinstance(node, (ast.If, ast.While, ast.For)):
            self._branch_depth += 1
            self.lower_body(node.body, out)
            self.lower_body(node.orelse, out)
            self._branch_depth -= 1
        elif isinstance(node, ast.With):
            self.lower_body(node.body, out)
        elif isinstance(node, ast.Try):
            self._branch_depth += 1
            self.lower_body(node.body, out)
            for handler in node.handlers:
                self.lower_body(handler.body, out)
            self.lower_body(node.orelse, out)
            self.lower_body(node.finalbody, out)
            self._branch_depth -= 1
        # Nested defs, classes, imports inside functions: not lowered.

    def _lower_assign(self, node: ast.stmt, out: List[Any]) -> None:
        weak = self._branch_depth > 0
        if isinstance(node, ast.Assign):
            value = self.lower(node.value)
            targets = []
            for raw in node.targets:
                if isinstance(raw, (ast.Tuple, ast.List)):
                    targets.extend(
                        t for t in (self.lower_target(el) for el in raw.elts) if t
                    )
                else:
                    target = self.lower_target(raw)
                    if target:
                        targets.append(target)
            # `xp = ops.xp` style rebinding: remember the alias for callee
            # classification in *later* statements of this function.
            if (
                isinstance(node.value, ast.Attribute)
                and node.value.attr == "xp"
            ):
                for target in targets:
                    if target[0] == "name":
                        self.xp_names.add(target[1])
            if targets:
                out.append(
                    ["assign", targets, value, node.lineno, node.col_offset + 1, weak]
                )
        elif isinstance(node, ast.AnnAssign):
            if node.value is None:
                return
            target = self.lower_target(node.target)
            if target:
                out.append(
                    ["assign", [target], self.lower(node.value),
                     node.lineno, node.col_offset + 1, weak]
                )
        elif isinstance(node, ast.AugAssign):
            target = self.lower_target(node.target)
            if target is None:
                return
            read = self.lower(node.target)
            value = ["bin", [read, self.lower(node.value)]]
            # Augmented assignment reads its old value, so the update is
            # inherently a join of old and new.
            out.append(
                ["assign", [target], value, node.lineno, node.col_offset + 1, True]
            )


# ---------------------------------------------------------------------------
# RNG-site collection
# ---------------------------------------------------------------------------


def _is_rngs_base(node: ast.expr) -> bool:
    """Whether *node* conventionally binds an ``RngStreams`` bundle."""
    if isinstance(node, ast.Name):
        return node.id in _RNGS_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _RNGS_NAMES
    return False


class _RngCollector(ast.NodeVisitor):
    """Walks one module recording every named-stream consumption site."""

    def __init__(self) -> None:
        self.sites: List[RngSite] = []
        self._func_stack: List[str] = []
        self._cond_depth = 0
        #: Call nodes already claimed by get/device_stream/batched_eval so
        #: their ``func`` attribute is not double-counted by visit_Attribute.
        self._claimed: set = set()

    # -- scope / conditional tracking ---------------------------------

    def _visit_function(self, node: Any) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    def _visit_conditional(self, node: Any) -> None:
        self._cond_depth += 1
        self.generic_visit(node)
        self._cond_depth -= 1

    visit_If = _visit_conditional
    visit_While = _visit_conditional
    visit_Try = _visit_conditional
    visit_IfExp = _visit_conditional

    # -- sites --------------------------------------------------------

    def _add(self, stream: str, node: ast.AST, via: str) -> None:
        self.sites.append(
            RngSite(
                stream=stream,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                function=".".join(self._func_stack) or None,
                conditional=self._cond_depth > 0,
                via=via,
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and _is_rngs_base(func.value):
            if func.attr == "batched_eval":
                self._claimed.add(id(func))
                self._add("batched_eval", node, "batched_eval")
            elif func.attr in ("get", "device_stream"):
                self._claimed.add(id(func))
                if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
                    node.args[0].value, str
                ):
                    self._add(node.args[0].value, node, func.attr)
                # Non-constant stream names are invisible to the analysis;
                # R9 documents this as an accepted soundness limit.
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            id(node) not in self._claimed
            and _is_rngs_base(node.value)
            and node.attr not in RNG_API_ATTRS
            and not node.attr.startswith("_")
        ):
            self._add(node.attr, node, "attr")
        self.generic_visit(node)


# ---------------------------------------------------------------------------
# module extraction
# ---------------------------------------------------------------------------


def _collect_np_aliases(tree: ast.Module) -> frozenset:
    aliases = {"np", "numpy"}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return frozenset(aliases)


def _collect_from_imports(tree: ast.Module) -> Dict[str, List[str]]:
    imports: Dict[str, List[str]] = {}
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                imports[alias.asname or alias.name] = [node.module, alias.name]
    return imports


def _collect_declarations(tree: ast.Module) -> Dict[str, Dict[str, Any]]:
    """R9 declaration literals (``STREAM_NAMES`` etc.) at module level."""
    out: Dict[str, Dict[str, Any]] = {}
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id in RNG_DECLARATION_NAMES
                and value is not None
            ):
                try:
                    literal = ast.literal_eval(value)
                except ValueError:
                    # frozenset({...}) and similar constructor calls.
                    if (
                        isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id in ("frozenset", "set", "tuple", "list", "dict")
                        and value.args
                    ):
                        try:
                            literal = ast.literal_eval(value.args[0])
                        except ValueError:
                            continue
                    elif (
                        isinstance(value, ast.Call)
                        and isinstance(value.func, ast.Name)
                        and value.func.id in ("frozenset", "set", "tuple", "list", "dict")
                    ):
                        literal = []
                    else:
                        continue
                out[target.id] = {"value": _jsonable(literal), "line": node.lineno}
    return out


def _jsonable(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    return value


def _function_params(node: Any, is_method: bool) -> List[str]:
    args = node.args
    names = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
    if is_method and names and names[0] in ("self", "cls"):
        names = names[1:]
    names += [a.arg for a in args.kwonlyargs]
    return names


def extract_summary(tree: ast.Module, path: str) -> ModuleSummary:
    """Lower one parsed module into its :class:`ModuleSummary`."""
    np_aliases = _collect_np_aliases(tree)
    summary = ModuleSummary(
        path=path,
        from_imports=_collect_from_imports(tree),
        declarations=_collect_declarations(tree),
    )

    def lower_function(node: Any, qualname: str, is_method: bool) -> None:
        lowerer = _Lowerer(np_aliases)
        fn = FunctionSummary(
            qualname=qualname,
            line=node.lineno,
            params=_function_params(node, is_method),
            is_method=is_method,
        )
        lowerer.lower_body(node.body, fn.stmts)
        summary.functions[qualname] = fn

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            lower_function(node, node.name, is_method=False)
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    lower_function(item, f"{node.name}.{item.name}", is_method=True)

    collector = _RngCollector()
    collector.visit(tree)
    summary.rng_sites = collector.sites
    return summary
