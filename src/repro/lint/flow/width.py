"""R7 — integer width/signedness flow for Q-format code arrays.

Atoms:

- ``NARROW``       array whose storage may be a uint8/uint16 code dtype
- ``WIDENED``      value widened out of narrow storage (cast, sum, matmul,
                   arithmetic) that has not been saturated since
- ``SAT``          value that passed through a saturating ``clip``
- ``CODEC``        a ``QCodec`` instance (its ``.dtype`` is narrow)
- ``NARROW_DTYPE`` a dtype expression that may denote uint8/uint16

The invariant (paper eq. 8: stochastic rounding is exact only inside the
declared code width) is that a ``WIDENED`` value must re-acquire ``SAT``
before it is narrowed or stored back into ``NARROW`` storage.  Widening
itself is fine — accumulation deliberately runs in int64 — so R7 fires
only at the narrow boundary:

1. ``x.astype(<narrow dtype>)`` where ``x`` may be ``WIDENED`` and has no
   ``SAT`` — an unsaturated wrap-around cast;
2. ``codes[...] = x`` / ``np.copyto(codes, x)`` where ``codes`` may be
   ``NARROW`` and ``x`` may be ``WIDENED`` without ``SAT``.

Saturation is conservative in the right direction for a may-analysis: a
value that is saturated on *any* path keeps ``SAT``, so mixed-branch
idioms (the uint/float split in ``QCodec.apply_delta_codes``) stay clean,
while a path with no ``clip`` at all can never synthesise the atom.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.lint.findings import Finding
from repro.lint.flow.lattices import BOT, Interp, Value, _Ctx, join
from repro.lint.flow.summary import ModuleSummary

NARROW = "NARROW"
WIDENED = "WIDENED"
SAT = "SAT"
CODEC = "CODEC"
NARROW_DTYPE = "NARROW_DTYPE"

#: Allocators whose result dtype comes from their ``dtype=`` kwarg.
_ALLOC_FNS = frozenset(
    {"zeros", "empty", "ones", "full", "arange", "asarray", "array",
     "ascontiguousarray", "frombuffer", "fromiter"}
)

#: ``*_like`` allocators inherit the prototype's storage.
_LIKE_FNS = frozenset({"zeros_like", "empty_like", "ones_like", "full_like"})

#: Elementwise fns through which atoms pass unchanged.
_PASSTHROUGH_FNS = frozenset(
    {"where", "minimum", "maximum", "abs", "rint", "copy", "reshape",
     "ravel", "transpose", "ascontiguousarray", "squeeze", "atleast_2d"}
)

#: Reductions/contractions that widen narrow integer inputs.
_WIDENING_FNS = frozenset({"sum", "matmul", "dot", "tensordot", "einsum", "cumsum"})

#: Corpus intrinsics producing codec / narrow-dtype values.
_CODEC_FACTORY_FNS = frozenset({"require_codec", "codec_for"})


class WidthInterp(Interp):
    rule = "R7"

    # -- atom sources --------------------------------------------------

    def hook_dtype_literal(self, tag: str) -> Value:
        return frozenset({NARROW_DTYPE}) if tag == "narrow" else BOT

    def hook_dtypeof(self, base: Value, ctx: _Ctx) -> Value:
        # codes.dtype / codec.dtype denote the narrow storage dtype.
        if NARROW in base or CODEC in base:
            return frozenset({NARROW_DTYPE})
        return BOT

    def hook_attr(self, base: Value, attr: str, ctx: _Ctx) -> Value:
        # Attribute reads on tracked arrays (``.T``, ``.flat``) keep atoms;
        # scalar-ish codec attributes (max_code, scale) do not.
        if attr in ("T", "flat", "real"):
            return base
        return BOT

    def hook_bin(self, operands: List[Value], ctx: _Ctx) -> Value:
        merged = join(*operands)
        if NARROW in merged or WIDENED in merged:
            # Arithmetic escapes narrow storage and invalidates saturation.
            return frozenset({WIDENED})
        return merged

    # -- calls ---------------------------------------------------------

    def hook_call(
        self,
        callee: List[Any],
        args: List[Value],
        kwargs: Dict[str, Value],
        arg_descs: List[Any],
        kwarg_descs: Dict[str, Any],
        line: int,
        col: int,
        ctx: _Ctx,
    ) -> Optional[Value]:
        kind = callee[0]
        if kind in ("np", "xp"):
            return self._array_fn(
                callee[1], args, kwargs, arg_descs, kwarg_descs, line, col, ctx
            )
        if kind == "method":
            name = callee[2]
            recv = self.eval(callee[1], ctx)
            if name == "astype":
                return self._astype(recv, args, kwargs, line, col, ctx)
            if name in _WIDENING_FNS and (NARROW in recv or WIDENED in recv):
                return frozenset({WIDENED}) | (recv & {SAT})
            if name == "clip":
                return self._saturate(recv)
            if name == "from_quantizer":
                return frozenset({CODEC})
            if name in ("copy", "view", "reshape", "ravel", "squeeze", "transpose"):
                return recv
            return None
        if kind == "func":
            name = callee[1]
            if name in _CODEC_FACTORY_FNS:
                return frozenset({CODEC})
            if name == "code_dtype":
                return frozenset({NARROW_DTYPE})
            if name == "QCodec":
                return frozenset({CODEC})
        return None

    def _array_fn(
        self,
        name: str,
        args: List[Value],
        kwargs: Dict[str, Value],
        arg_descs: List[Any],
        kwarg_descs: Dict[str, Any],
        line: int,
        col: int,
        ctx: _Ctx,
    ) -> Optional[Value]:
        if name == "dtype":
            # np.dtype(x) is the identity in the dtype sub-domain.
            return args[0] & {NARROW_DTYPE} if args else BOT
        if name == "clip":
            result = self._saturate(args[0] if args else BOT)
            out_desc = kwarg_descs.get("out")
            if out_desc is not None and out_desc[0] == "name":
                # In-place clip saturates the named operand itself.
                target = out_desc[1]
                ctx.env[target] = ctx.env.get(target, BOT) | frozenset({SAT})
            return result
        if name == "copyto":
            if len(args) >= 2:
                self._check_store(args[0], args[1], line, col, ctx, via="np.copyto")
            return BOT
        if name in _LIKE_FNS:
            proto = args[0] if args else BOT
            dtype = kwargs.get("dtype", BOT)
            if NARROW_DTYPE in dtype:
                return frozenset({NARROW})
            if "dtype" in kwargs:
                return self._rewiden(proto)
            return proto & {NARROW}
        if name in _ALLOC_FNS:
            dtype = kwargs.get("dtype", BOT)
            source = args[0] if args else BOT
            if NARROW_DTYPE in dtype:
                if WIDENED in source and SAT not in source:
                    self.report(
                        ctx, line, col,
                        f"widened code value narrowed by {name}(dtype=<narrow>) "
                        "without a saturating clip",
                    )
                return frozenset({NARROW})
            if "dtype" in kwargs:
                return self._rewiden(source)
            return source  # dtype-preserving conversion keeps all atoms
        if name in _WIDENING_FNS:
            merged = join(*args)
            if NARROW in merged or WIDENED in merged:
                return frozenset({WIDENED}) | (merged & {SAT})
            return BOT
        if name in _PASSTHROUGH_FNS:
            return join(*args)
        return BOT

    @staticmethod
    def _rewiden(source: Value) -> Value:
        if NARROW in source or WIDENED in source:
            return frozenset({WIDENED}) | (source & {SAT})
        return source

    @staticmethod
    def _saturate(value: Value) -> Value:
        if NARROW in value or WIDENED in value:
            return value | frozenset({SAT})
        return value

    def _astype(
        self,
        recv: Value,
        args: List[Value],
        kwargs: Dict[str, Value],
        line: int,
        col: int,
        ctx: _Ctx,
    ) -> Value:
        dtype = args[0] if args else kwargs.get("dtype", BOT)
        if NARROW_DTYPE in dtype:
            if WIDENED in recv and SAT not in recv:
                self.report(
                    ctx, line, col,
                    "widened code value narrowed with astype(<narrow dtype>) "
                    "without a saturating clip",
                )
            return frozenset({NARROW})
        # Cast to a wide (or unknown) dtype: a narrow value escapes.
        return self._rewiden(recv)

    # -- stores --------------------------------------------------------

    def hook_substore(
        self,
        base_desc: List[Any],
        base: Value,
        value: Value,
        line: int,
        col: int,
        ctx: _Ctx,
    ) -> None:
        self._check_store(base, value, line, col, ctx, via="subscript store")

    def _check_store(
        self, target: Value, value: Value, line: int, col: int, ctx: _Ctx, via: str
    ) -> None:
        if NARROW in target and WIDENED in value and SAT not in value:
            self.report(
                ctx, line, col,
                f"widened code value stored into narrow code storage ({via}) "
                "without a saturating clip",
            )


def check_width(corpus: Dict[str, ModuleSummary]) -> List[Finding]:
    """Run R7 over one whole-program corpus."""
    return WidthInterp(corpus).run()
