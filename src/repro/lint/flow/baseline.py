"""Baseline suppression for flow findings.

A baseline file lets a pre-existing finding ride while the underlying
code is being fixed, without turning the lint job off.  Entries match on
``(rule, path, message)`` — deliberately *not* on line numbers, which
shift under unrelated edits — and every entry must carry a one-line
``justification``.  Entries that match no current finding are reported as
W0 (stale suppression), so the baseline can only shrink.

File format (JSON)::

    {
      "version": 1,
      "entries": [
        {"rule": "R8", "path": "src/repro/...", "message": "...",
         "justification": "why this is temporarily acceptable"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.lint.findings import Finding

BASELINE_FORMAT_VERSION = 1

_Key = Tuple[str, str, str]


@dataclass
class Baseline:
    """Parsed baseline file: entry keys plus their justifications."""

    path: str
    entries: Dict[_Key, str] = field(default_factory=dict)

    @property
    def size(self) -> int:
        return len(self.entries)


def load_baseline(path: str) -> Baseline:
    """Parse a baseline file; a missing file is an empty baseline."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except FileNotFoundError:
        return Baseline(path=path)
    except ValueError as err:
        raise ConfigurationError(f"baseline file {path!r} is not valid JSON: {err}")
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_FORMAT_VERSION:
        raise ConfigurationError(
            f"baseline file {path!r} must declare version {BASELINE_FORMAT_VERSION}"
        )
    baseline = Baseline(path=path)
    for i, entry in enumerate(payload.get("entries", [])):
        try:
            key = (entry["rule"], entry["path"], entry["message"])
            justification = entry["justification"]
        except (KeyError, TypeError):
            raise ConfigurationError(
                f"baseline file {path!r} entry {i} needs rule/path/message/"
                "justification"
            )
        if not str(justification).strip():
            raise ConfigurationError(
                f"baseline file {path!r} entry {i} has an empty justification"
            )
        baseline.entries[key] = str(justification)
    return baseline


def apply_baseline(
    findings: List[Finding], baseline: Baseline
) -> Tuple[List[Finding], int, List[Finding]]:
    """Split findings by the baseline.

    Returns ``(kept, suppressed_count, stale_w0_findings)``: findings not
    covered by an entry, the number that were, and one W0 warning per
    entry that matched nothing (anchored on the baseline file itself).
    """
    kept: List[Finding] = []
    suppressed = 0
    used: set = set()
    for finding in findings:
        key = (finding.rule, finding.path, finding.message)
        if key in baseline.entries:
            suppressed += 1
            used.add(key)
        else:
            kept.append(finding)
    stale: List[Finding] = []
    for key in sorted(baseline.entries):
        if key not in used:
            rule, path, message = key
            stale.append(
                Finding(
                    rule="W0",
                    path=baseline.path,
                    line=1,
                    col=1,
                    message=(
                        f"stale baseline entry: no current {rule} finding in "
                        f"{path} matches {message!r}"
                    ),
                    severity="warning",
                )
            )
    return kept, suppressed, stale
