"""Shared abstract-interpretation machinery for the flow passes.

Abstract values are frozensets of **atom** strings; join is set union and
bottom is the empty set (may-analysis: an atom is present when the
property holds on *some* path).  :class:`Interp` drives a whole-program
fixpoint over :class:`~repro.lint.flow.summary.ModuleSummary` IR:

- each function body is interpreted in source order, twice, so
  loop-carried values reach their join;
- calls resolved against the analyzed corpus bind argument values into
  the callee's parameter environment and yield the join of the callee's
  return values — both accumulate monotonically, so iterating the whole
  corpus until quiescence is a textbook Kleene fixpoint;
- ``self.<attr>`` reads and writes go through a per-class attribute
  environment, which is how allocation facts established in ``__init__``
  reach the hot loops.

Method calls that cannot be pinned to a class resolve by *name* against
the corpus, capped at :data:`MAX_METHOD_CANDIDATES` candidates — beyond
that the call is treated as opaque (documented unsoundness; precision is
traded for zero false positives on the live tree).

Subclasses implement the rule-specific transfer functions by overriding
the ``hook_*`` methods and emit findings through :meth:`report` (only
honoured during the final collection pass, so warm-up iterations never
duplicate diagnostics).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.flow.summary import FunctionSummary, ModuleSummary

Value = FrozenSet[str]

BOT: Value = frozenset()

#: Method-name resolution gives up past this many same-named candidates.
MAX_METHOD_CANDIDATES = 3

#: Corpus-wide fixpoint rounds; join-only state converges far earlier.
MAX_ITERATIONS = 12


def join(*values: Value) -> Value:
    out: FrozenSet[str] = frozenset()
    for value in values:
        out = out | value
    return out


class _Ctx:
    """Per-function interpretation context."""

    __slots__ = ("path", "fn", "env", "class_name", "collect")

    def __init__(
        self,
        path: str,
        fn: FunctionSummary,
        env: Dict[str, Value],
        class_name: Optional[str],
        collect: bool,
    ) -> None:
        self.path = path
        self.fn = fn
        self.env = env
        self.class_name = class_name
        self.collect = collect


class Interp:
    """Whole-program fixpoint interpreter over a summary corpus."""

    #: Rule id used by :meth:`report` (subclasses set "R7"/"R8").
    rule = "R?"

    def __init__(self, corpus: Dict[str, ModuleSummary]) -> None:
        self.corpus = corpus
        # key = "path::qualname"
        self.functions: Dict[str, Tuple[str, FunctionSummary]] = {}
        self.module_funcs: Dict[str, Dict[str, str]] = {}
        self.methods_by_name: Dict[str, List[str]] = {}
        self.classes: Dict[str, List[str]] = {}  # class name -> paths defining it
        for path in sorted(corpus):
            summary = corpus[path]
            self.module_funcs[path] = {}
            for qualname in sorted(summary.functions):
                fn = summary.functions[qualname]
                key = f"{path}::{qualname}"
                self.functions[key] = (path, fn)
                if "." in qualname:
                    cls, method = qualname.split(".", 1)
                    self.methods_by_name.setdefault(method, []).append(key)
                    paths = self.classes.setdefault(cls, [])
                    if path not in paths:
                        paths.append(path)
                else:
                    self.module_funcs[path][qualname] = key
        self.param_env: Dict[str, Dict[str, Value]] = {
            key: {} for key in self.functions
        }
        self.returns: Dict[str, Value] = {key: BOT for key in self.functions}
        self.class_env: Dict[str, Dict[str, Value]] = {}
        self._changed = False
        self._findings: Dict[Tuple[str, int, int, str], Finding] = {}

    # -- public entry --------------------------------------------------

    def run(self) -> List[Finding]:
        for _ in range(MAX_ITERATIONS):
            self._changed = False
            for key in sorted(self.functions):
                self._exec_function(key, collect=False)
            if not self._changed:
                break
        for key in sorted(self.functions):
            self._exec_function(key, collect=True)
        return sorted(self._findings.values(), key=Finding.sort_key)

    # -- reporting -----------------------------------------------------

    def report(self, ctx: _Ctx, line: int, col: int, message: str) -> None:
        if not ctx.collect:
            return
        dedup = (ctx.path, line, col, message)
        if dedup not in self._findings:
            self._findings[dedup] = Finding(
                rule=self.rule, path=ctx.path, line=line, col=col, message=message
            )

    # -- fixpoint plumbing ---------------------------------------------

    def _exec_function(self, key: str, collect: bool) -> None:
        path, fn = self.functions[key]
        env: Dict[str, Value] = {}
        params = self.param_env[key]
        for name in fn.params:
            env[name] = params.get(name, BOT)
        class_name = fn.qualname.split(".", 1)[0] if fn.is_method else None
        ctx = _Ctx(path, fn, env, class_name, collect)
        # Two passes: loop-carried joins land on the second traversal.
        for _ in range(2):
            for stmt in fn.stmts:
                self._exec_stmt(stmt, ctx, key)

    def _exec_stmt(self, stmt: List[Any], ctx: _Ctx, key: str) -> None:
        tag = stmt[0]
        if tag == "assign":
            _, targets, value_desc, line, col, weak = stmt
            value = self.eval(value_desc, ctx)
            for target in targets:
                self._store(target, value, value_desc, line, col, ctx, weak)
        elif tag == "ret":
            value = self.eval(stmt[1], ctx)
            merged = self.returns[key] | value
            if merged != self.returns[key]:
                self.returns[key] = merged
                self._changed = True
        elif tag == "expr":
            self.eval(stmt[1], ctx)

    def _store(
        self,
        target: List[Any],
        value: Value,
        value_desc: List[Any],
        line: int,
        col: int,
        ctx: _Ctx,
        weak: bool = True,
    ) -> None:
        kind = target[0]
        if kind == "name":
            name = target[1]
            if weak:
                ctx.env[name] = ctx.env.get(name, BOT) | value
            else:
                # Unconditional rebind: last write wins, so e.g.
                # ``x = ops.to_host(x)`` genuinely clears residency.
                ctx.env[name] = value
        elif kind == "selfattr":
            if ctx.class_name is None:
                return
            self._join_class_attr(ctx.path, ctx.class_name, target[1], value)
        elif kind == "substore":
            base_value = self.eval(target[1], ctx)
            self.hook_substore(target[1], base_value, value, line, col, ctx)
        # attrstore on non-self bases is opaque.

    def _join_class_attr(self, path: str, cls: str, attr: str, value: Value) -> None:
        env = self.class_env.setdefault(f"{path}::{cls}", {})
        merged = env.get(attr, BOT) | value
        if merged != env.get(attr, BOT):
            env[attr] = merged
            self._changed = True

    def _class_attr(self, path: str, cls: str, attr: str) -> Value:
        return self.class_env.get(f"{path}::{cls}", {}).get(attr, BOT)

    # -- expression evaluation -----------------------------------------

    def eval(self, desc: List[Any], ctx: _Ctx) -> Value:
        tag = desc[0]
        if tag == "name":
            return ctx.env.get(desc[1], BOT)
        if tag == "selfattr":
            if ctx.class_name is None:
                return BOT
            return self._class_attr(ctx.path, ctx.class_name, desc[1])
        if tag == "attr":
            return self.hook_attr(self.eval(desc[1], ctx), desc[2], ctx)
        if tag == "sub":
            # Views and element reads keep the array's atoms.
            return self.eval(desc[1], ctx)
        if tag == "bin":
            return self.hook_bin([self.eval(d, ctx) for d in desc[1]], ctx)
        if tag in ("ifexp", "coll"):
            return join(*[self.eval(d, ctx) for d in desc[1]])
        if tag == "dtype":
            return self.hook_dtype_literal(desc[1])
        if tag == "dtypeof":
            return self.hook_dtypeof(self.eval(desc[1], ctx), ctx)
        if tag == "call":
            return self._eval_call(desc, ctx)
        return BOT  # const / unknown

    def _eval_call(self, desc: List[Any], ctx: _Ctx) -> Value:
        _, callee, arg_descs, kwarg_descs, line, col = desc
        args = [self.eval(d, ctx) for d in arg_descs]
        kwargs = {k: self.eval(d, ctx) for k, d in sorted(kwarg_descs.items())}
        hooked = self.hook_call(
            callee, args, kwargs, arg_descs, kwarg_descs, line, col, ctx
        )
        if hooked is not None:
            return hooked
        targets = self._resolve(callee, ctx)
        if not targets:
            recv = (
                self.eval(callee[1], ctx) if callee[0] == "method" else BOT
            )
            return self.hook_opaque_call(callee, recv, args, kwargs, ctx)
        result = BOT
        for target_key in targets:
            self._bind(target_key, args, kwargs)
            result = result | self.returns[target_key]
        return result

    def _bind(self, key: str, args: List[Value], kwargs: Dict[str, Value]) -> None:
        _, fn = self.functions[key]
        params = self.param_env[key]

        def merge(name: str, value: Value) -> None:
            merged = params.get(name, BOT) | value
            if merged != params.get(name, BOT):
                params[name] = merged
                self._changed = True

        for i, value in enumerate(args):
            if i < len(fn.params):
                merge(fn.params[i], value)
        for name, value in kwargs.items():
            if name in fn.params:
                merge(name, value)

    # -- callee resolution ---------------------------------------------

    def _resolve(self, callee: List[Any], ctx: _Ctx) -> List[str]:
        kind = callee[0]
        if kind == "func":
            return self._resolve_name(callee[1], ctx.path)
        if kind == "method":
            return self._resolve_method(callee[1], callee[2], ctx)
        return []

    def _resolve_name(self, name: str, path: str) -> List[str]:
        local = self.module_funcs.get(path, {}).get(name)
        if local:
            return [local]
        imported = self.corpus[path].from_imports.get(name) if path in self.corpus else None
        if imported:
            module, target = imported
            target_path = self._module_to_path(module)
            if target_path:
                found = self.module_funcs.get(target_path, {}).get(target)
                if found:
                    return [found]
                name = target  # imported class: fall through to ctor check
        if name in self.classes:
            ctors = []
            for cls_path in self.classes[name]:
                ctor = f"{cls_path}::{name}.__init__"
                if ctor in self.functions:
                    ctors.append(ctor)
            return ctors[:MAX_METHOD_CANDIDATES]
        return []

    def _resolve_method(
        self, recv: List[Any], name: str, ctx: _Ctx
    ) -> List[str]:
        # self.method(): own class wins outright.
        if recv == ["name", "self"] and ctx.class_name is not None:
            own = f"{ctx.path}::{ctx.class_name}.{name}"
            if own in self.functions:
                return [own]
        # ClassName.method() (classmethod / explicit class call).
        if recv[0] == "name" and recv[1] in self.classes:
            keys = [
                f"{p}::{recv[1]}.{name}"
                for p in self.classes[recv[1]]
                if f"{p}::{recv[1]}.{name}" in self.functions
            ]
            if keys:
                return keys[:MAX_METHOD_CANDIDATES]
        candidates = self.methods_by_name.get(name, [])
        if 0 < len(candidates) <= MAX_METHOD_CANDIDATES:
            return list(candidates)
        return []

    def _module_to_path(self, module: str) -> Optional[str]:
        suffix = "/" + module.replace(".", "/") + ".py"
        init_suffix = "/" + module.replace(".", "/") + "/__init__.py"
        for path in sorted(self.corpus):
            slashed = "/" + path
            if slashed.endswith(suffix) or slashed.endswith(init_suffix):
                return path
        return None

    # -- subclass hooks ------------------------------------------------

    def hook_call(
        self,
        callee: List[Any],
        args: List[Value],
        kwargs: Dict[str, Value],
        arg_descs: List[Any],
        kwarg_descs: Dict[str, Any],
        line: int,
        col: int,
        ctx: _Ctx,
    ) -> Optional[Value]:
        """Intercept a call before corpus resolution; None falls through."""
        return None

    def hook_opaque_call(
        self,
        callee: List[Any],
        recv: Value,
        args: List[Value],
        kwargs: Dict[str, Value],
        ctx: _Ctx,
    ) -> Value:
        """Result of a call the corpus cannot resolve."""
        return BOT

    def hook_bin(self, operands: List[Value], ctx: _Ctx) -> Value:
        return join(*operands)

    def hook_attr(self, base: Value, attr: str, ctx: _Ctx) -> Value:
        return BOT

    def hook_dtype_literal(self, tag: str) -> Value:
        return BOT

    def hook_dtypeof(self, base: Value, ctx: _Ctx) -> Value:
        return BOT

    def hook_substore(
        self,
        base_desc: List[Any],
        base: Value,
        value: Value,
        line: int,
        col: int,
        ctx: _Ctx,
    ) -> None:
        """A ``base[...] = value`` store; rules check invariants here."""
