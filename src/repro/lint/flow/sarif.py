"""SARIF 2.1.0 emission for GitHub code scanning.

Maps a :class:`~repro.lint.findings.LintReport` onto the minimal valid
SARIF 2.1.0 document code scanning ingests: one run, one driver with the
full rule table, one result per finding with a physical location relative
to ``%SRCROOT%``.  Construction order is fixed and the JSON encoder is
given already-ordered dicts, so two identical reports serialize to
byte-identical SARIF (the determinism tests pin this).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.lint.findings import RULE_DESCRIPTIONS, LintReport

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {"error": "error", "warning": "warning"}


def report_to_sarif(report: LintReport) -> Dict[str, Any]:
    """Build the SARIF document as plain ordered dicts."""
    rule_ids = sorted(RULE_DESCRIPTIONS)
    rule_index = {rule: i for i, rule in enumerate(rule_ids)}
    rules = [
        {
            "id": rule,
            "name": f"repro-lint-{rule}",
            "shortDescription": {"text": RULE_DESCRIPTIONS[rule]},
            "defaultConfiguration": {
                "level": "warning" if rule == "W0" else "error"
            },
        }
        for rule in rule_ids
    ]
    results = []
    for finding in sorted(report.findings, key=lambda f: f.sort_key()):
        result: Dict[str, Any] = {
            "ruleId": finding.rule,
            "level": _LEVELS.get(finding.severity, "error"),
            "message": {"text": f"{finding.rule}: {finding.message}"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": max(finding.col, 1),
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/repro/repro#lint-rules"
                        ),
                        "rules": rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


def sarif_json(report: LintReport, indent: int = 2) -> str:
    """Serialize to deterministic SARIF JSON text."""
    return json.dumps(report_to_sarif(report), indent=indent, sort_keys=False)
