"""Per-file content-hash cache for lint facts.

Everything the runner derives from one file's bytes alone — its parse,
the syntactic R1-R6 findings, the pragma maps, and the flow-IR
:class:`~repro.lint.flow.summary.ModuleSummary` — is memoised per file as
one :class:`FileFacts` record keyed by the SHA-256 of the source text, so
a warm run touches only files that actually changed.  The remaining
whole-program half — propagation — always re-runs, which is what makes
per-file caching *sound* for an interprocedural analysis: a change to one
file re-derives that file only, but its new summary still flows through
every caller on the next propagation.  Propagation itself is additionally
memoised under a whole-corpus key (:func:`corpus_key`): it is a pure
function of the summary corpus, so an unchanged corpus skips it outright.

Entries also record :data:`SUMMARY_FORMAT_VERSION`; bumping the IR format
invalidates the whole cache rather than misreading old entries.  The
on-disk form is a single JSON document with sorted keys, so the CI cache
key (hash of the analyzed sources) maps 1:1 onto its content.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional

from repro.lint.findings import Finding
from repro.lint.flow.summary import SUMMARY_FORMAT_VERSION, ModuleSummary

CACHE_FORMAT_VERSION = 1


@dataclass
class FileFacts:
    """Everything one lint run needs from one file, derived or cached."""

    display: str
    #: Syntactic findings before pragma suppression (includes PARSE).
    raw: List[Finding]
    #: Line -> ``None`` (suppress all rules) or the suppressed rule set.
    suppress: Dict[int, Optional[FrozenSet[str]]]
    #: Lines carrying a real (tokenizer-confirmed) pragma comment, for W0.
    pragma_lines: List[int]
    #: Flow IR; ``None`` in non-flow runs (never cached without it).
    summary: Optional[ModuleSummary] = None

    def as_dict(self) -> Dict[str, object]:
        assert self.summary is not None, "only flow facts are cached"
        return {
            "raw": [f.as_dict() for f in self.raw],
            "suppress": {
                str(line): (None if rules is None else sorted(rules))
                for line, rules in self.suppress.items()
            },
            "pragma_lines": list(self.pragma_lines),
            "summary": self.summary.as_dict(),
        }

    @classmethod
    def from_dict(cls, display: str, data: Dict[str, object]) -> "FileFacts":
        return cls(
            display=display,
            raw=[Finding(**entry) for entry in data["raw"]],  # type: ignore[union-attr]
            suppress={
                int(line): (None if rules is None else frozenset(rules))
                for line, rules in data["suppress"].items()  # type: ignore[union-attr]
            },
            pragma_lines=[int(line) for line in data["pragma_lines"]],  # type: ignore[union-attr]
            summary=ModuleSummary.from_dict(data["summary"]),  # type: ignore[arg-type]
        )


def content_hash(source: str) -> str:
    """SHA-256 of the file's source text (the cache key)."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def corpus_key(path_hashes: Dict[str, str]) -> str:
    """One key for the whole analyzed corpus (propagation-result cache).

    Propagation is a pure function of the summary corpus, so its findings
    can be memoised under the hash of every (path, content-hash) pair: any
    file edit, addition or removal changes the key and forces a re-run.
    """
    digest = hashlib.sha256()
    for path in sorted(path_hashes):
        digest.update(path.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path_hashes[path].encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


class SummaryCache:
    """Load/store per-file facts keyed by display path + content hash."""

    def __init__(self, cache_path: Optional[str] = None) -> None:
        self.cache_path = cache_path
        self._entries: Dict[str, Dict[str, object]] = {}
        self._result: Optional[Dict[str, object]] = None
        self.hits = 0
        self.misses = 0
        if cache_path and os.path.exists(cache_path):
            self._load(cache_path)

    def _load(self, cache_path: str) -> None:
        try:
            with open(cache_path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return  # unreadable/corrupt cache: start cold
        if not isinstance(payload, dict):
            return
        if payload.get("cache_format") != CACHE_FORMAT_VERSION:
            return
        if payload.get("summary_format") != SUMMARY_FORMAT_VERSION:
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self._entries = entries
        result = payload.get("result")
        if isinstance(result, dict):
            self._result = result

    def get_facts(self, path: str, source_hash: str) -> Optional[FileFacts]:
        entry = self._entries.get(path)
        if entry and entry.get("hash") == source_hash:
            try:
                facts = FileFacts.from_dict(path, entry["facts"])  # type: ignore[arg-type]
            except (KeyError, TypeError, ValueError):
                self.misses += 1
                return None
            self.hits += 1
            return facts
        self.misses += 1
        return None

    def put_facts(self, path: str, source_hash: str, facts: FileFacts) -> None:
        self._entries[path] = {"hash": source_hash, "facts": facts.as_dict()}

    def get_result(self, key: str) -> Optional[list]:
        """Cached propagation findings for an identical corpus, if any."""
        if self._result and self._result.get("key") == key:
            findings = self._result.get("findings")
            if isinstance(findings, list):
                return findings
        return None

    def set_result(self, key: str, findings: list) -> None:
        self._result = {"key": key, "findings": findings}

    def prune(self, live_paths: Iterable[str]) -> None:
        """Drop entries for files no longer part of the analyzed set."""
        live = set(live_paths)
        for path in list(self._entries):
            if path not in live:
                del self._entries[path]

    def save(self) -> None:
        if not self.cache_path:
            return
        payload = {
            "cache_format": CACHE_FORMAT_VERSION,
            "summary_format": SUMMARY_FORMAT_VERSION,
            "entries": self._entries,
            "result": self._result,
        }
        directory = os.path.dirname(self.cache_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp_path = self.cache_path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, sort_keys=True, separators=(",", ":"))
        os.replace(tmp_path, self.cache_path)
