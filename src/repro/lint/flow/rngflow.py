"""R9 — RNG-stream provenance: draws audited against the rng.py manifest.

Bit-identity across engine tiers (the paper's fused-vs-event and
qfused-vs-qevent equivalence claims) holds only if every named
``RngStreams`` stream is drawn by exactly the documented call sites with
matching draw counts.  The ground truth is declared as module-level
literals in ``engine/rng.py`` itself — parsed from the AST by
:mod:`repro.lint.flow.summary`, never imported, so fixture corpora can
carry their own manifest:

- ``STREAM_NAMES``      the spawn-ordered stream tuple (already present);
- ``STREAM_CONSUMERS``  stream -> list of module-path suffixes allowed to
  draw it (``"batched_eval"`` covers the salted pseudo-stream);
- ``PARITY_GROUPS``     lists of module suffixes that must consume the
  same stream set with the same conditionality, because their engines
  are asserted bit-identical;
- ``RESERVED_STREAMS``  stream -> one-line justification for a stream
  that is intentionally unconsumed (spawn-prefix stability forbids
  removing entries from ``STREAM_NAMES``).

Checks, all emitted as R9:

1. a site draws a stream not in ``STREAM_NAMES`` (typo'd name);
2. a site's module is absent from the stream's consumer list;
3. a stream has consumers but no ``STREAM_CONSUMERS`` entry;
4. a declared consumer module never actually draws the stream
   (manifest rot);
5. a stream with no sites at all and no ``RESERVED_STREAMS`` entry
   (dead stream);
6. within a parity group: members draw different stream sets, or one
   member draws a stream conditionally while a peer draws it
   unconditionally (draw-count parity breaks).

Sites with non-constant stream names (``rngs.get(variable)``) are
invisible — an accepted, documented soundness limit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.flow.summary import ModuleSummary, RngSite

#: The pseudo-stream drawn by ``RngStreams.batched_eval``.
BATCHED_EVAL = "batched_eval"

#: Path suffix identifying the manifest module.
MANIFEST_SUFFIX = "engine/rng.py"


def _find_manifest(corpus: Dict[str, ModuleSummary]) -> Optional[ModuleSummary]:
    for path in sorted(corpus):
        if path.endswith(MANIFEST_SUFFIX):
            return corpus[path]
    return None


def _module_matches(path: str, suffix: str) -> bool:
    return path == suffix or path.endswith("/" + suffix) or path.endswith(suffix)


def check_rng_provenance(corpus: Dict[str, ModuleSummary]) -> List[Finding]:
    """Run R9 over one whole-program corpus."""
    manifest = _find_manifest(corpus)
    if manifest is None:
        return []
    decls = manifest.declarations
    if "STREAM_NAMES" not in decls:
        return []

    stream_names = list(decls["STREAM_NAMES"]["value"])
    names_line = decls["STREAM_NAMES"]["line"]
    consumers_decl = decls.get("STREAM_CONSUMERS", {"value": {}, "line": names_line})
    consumers: Dict[str, List[str]] = dict(consumers_decl["value"])
    consumers_line = consumers_decl["line"]
    parity_decl = decls.get("PARITY_GROUPS", {"value": [], "line": names_line})
    parity_groups: List[List[str]] = [list(g) for g in parity_decl["value"]]
    parity_line = parity_decl["line"]
    reserved_decl = decls.get("RESERVED_STREAMS", {"value": {}, "line": names_line})
    reserved = reserved_decl["value"]
    reserved_names = set(reserved) if isinstance(reserved, (dict, list)) else set()

    known = set(stream_names) | {BATCHED_EVAL}
    findings: List[Finding] = []

    def add(path: str, line: int, col: int, message: str) -> None:
        findings.append(
            Finding(rule="R9", path=path, line=line, col=col, message=message)
        )

    # Collect consumption sites outside the manifest module itself.
    sites: List[Tuple[str, RngSite]] = []
    for path in sorted(corpus):
        if path.endswith(MANIFEST_SUFFIX):
            continue
        for site in corpus[path].rng_sites:
            sites.append((path, site))

    drawn_by_stream: Dict[str, List[Tuple[str, RngSite]]] = {}
    for path, site in sites:
        drawn_by_stream.setdefault(site.stream, []).append((path, site))

    # 1 + 2: per-site checks.
    for path, site in sites:
        if site.stream not in known:
            add(
                path, site.line, site.col,
                f"draw from undeclared RNG stream '{site.stream}' "
                f"(known streams: {', '.join(sorted(known))})",
            )
            continue
        allowed = consumers.get(site.stream)
        if allowed is None:
            continue  # reported once as an unmapped stream below
        if not any(_module_matches(path, suffix) for suffix in allowed):
            add(
                path, site.line, site.col,
                f"module is not a declared consumer of RNG stream "
                f"'{site.stream}' (declared: {', '.join(allowed) or 'none'}); "
                "update STREAM_CONSUMERS in engine/rng.py or drop the draw",
            )

    # 3: streams with live sites but no consumer declaration.
    for stream in sorted(drawn_by_stream):
        if stream in known and stream not in consumers:
            add(
                manifest.path, consumers_line, 1,
                f"RNG stream '{stream}' is drawn but has no STREAM_CONSUMERS "
                "entry in engine/rng.py",
            )

    # 4: declared consumers that never draw (manifest rot).  Only checked
    # for modules actually present in the analyzed corpus, so scoped runs
    # do not fabricate rot.
    for stream in sorted(consumers):
        for suffix in consumers[stream]:
            matching = [p for p in sorted(corpus) if _module_matches(p, suffix)]
            if not matching:
                continue
            if not any(
                _module_matches(p, suffix)
                for p, s in drawn_by_stream.get(stream, [])
            ):
                add(
                    manifest.path, consumers_line, 1,
                    f"STREAM_CONSUMERS declares '{suffix}' as a consumer of "
                    f"'{stream}' but no draw site was found there",
                )

    # 5: dead streams.
    for stream in stream_names:
        if stream in drawn_by_stream or stream in reserved_names:
            continue
        add(
            manifest.path, names_line, 1,
            f"RNG stream '{stream}' has no consumers and no RESERVED_STREAMS "
            "justification (dead stream; spawn-prefix stability forbids "
            "removal — reserve it instead)",
        )

    # 6: parity groups.
    for group in parity_groups:
        members: List[Tuple[str, str]] = []  # (suffix, resolved path)
        for suffix in group:
            paths = [p for p in sorted(corpus) if _module_matches(p, suffix)]
            if paths:
                members.append((suffix, paths[0]))
        if len(members) < 2:
            continue
        per_member: Dict[str, Dict[str, bool]] = {}
        for suffix, path in members:
            streams: Dict[str, bool] = {}
            for site in corpus[path].rng_sites:
                unconditional = streams.get(site.stream, False)
                streams[site.stream] = unconditional or not site.conditional
            per_member[suffix] = streams
        all_streams = sorted({s for m in per_member.values() for s in m})
        for stream in all_streams:
            holders = [sfx for sfx, m in per_member.items() if stream in m]
            missing = [sfx for sfx, _ in members if stream not in per_member[sfx]]
            if missing:
                add(
                    manifest.path, parity_line, 1,
                    f"parity group ({', '.join(s for s, _ in members)}): stream "
                    f"'{stream}' is drawn by {', '.join(holders)} but not by "
                    f"{', '.join(missing)} — draw-count parity cannot hold",
                )
                continue
            modes = {sfx: per_member[sfx][stream] for sfx, _ in members}
            if len(set(modes.values())) > 1:
                conditional_only = sorted(s for s, v in modes.items() if not v)
                add(
                    manifest.path, parity_line, 1,
                    f"parity group ({', '.join(s for s, _ in members)}): stream "
                    f"'{stream}' is drawn only conditionally in "
                    f"{', '.join(conditional_only)} but unconditionally in its "
                    "peers — conditional draws break draw-count parity",
                )

    return sorted(findings, key=Finding.sort_key)
