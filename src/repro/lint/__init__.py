"""Project-specific static analysis: the determinism & numerics linter.

``python -m repro lint`` enforces the conventions the engine registry's
equivalence tiers depend on.  Bit-identity between the reference, fused and
event execution paths only holds when every random draw flows through an
explicitly seeded :class:`~repro.engine.rng.RngStreams` stream and every hot
buffer has a pinned dtype — properties a test suite can only sample, but an
AST walk can prove for the whole tree.  Four rules:

- **R1** — no seedless or module-level ``np.random`` construction outside
  ``engine/rng.py``; randomness must come from ``RngStreams`` or an
  explicitly seeded, caller-supplied ``Generator``.
- **R2** — dtype discipline in engine/quantization hot paths: array
  allocations need an explicit ``dtype`` and one expression must not mix
  float32 with float64.
- **R3** — engine-registry conformance: every :class:`EngineSpec` factory
  resolves, the class satisfies the :class:`PresentationEngine` protocol
  and declared capabilities match implemented methods (import/inspect only,
  no simulation).
- **R4** — no mutable default arguments; parameters defaulting to ``None``
  must be annotated ``Optional``.
- **R5/R6** — exception hygiene and backend discipline (syntactic).

``python -m repro lint --flow`` adds the interprocedural dataflow passes
of :mod:`repro.lint.flow` — **R7** (integer-width flow for Q-format
codes), **R8** (device-residency flow to host-only sinks), **R9**
(RNG-stream provenance against the ``engine/rng.py`` manifest) — plus
**W0**, which reports suppressions that no longer suppress anything.

A finding can be suppressed in place with a ``# lint-ok`` comment (all
rules) or ``# lint-ok: R1`` (specific rules) on the offending line.
"""

from repro.lint.contracts import check_engine_contracts
from repro.lint.findings import (
    REPORT_SCHEMA_VERSION,
    RULE_DESCRIPTIONS,
    Finding,
    LintReport,
)
from repro.lint.rules import check_module
from repro.lint.runner import iter_source_files, lint_paths, lint_source

__all__ = [
    "Finding",
    "LintReport",
    "REPORT_SCHEMA_VERSION",
    "RULE_DESCRIPTIONS",
    "check_engine_contracts",
    "check_module",
    "iter_source_files",
    "lint_paths",
    "lint_source",
]
