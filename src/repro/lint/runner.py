"""Walks files, parses them and assembles the :class:`LintReport`.

The runner is what the CLI subcommand calls: it expands file/directory
arguments into a deterministic file list, runs the syntactic rules per
file, optionally appends the R3 registry-conformance findings, and — with
``flow=True`` — the interprocedural R7/R8/R9 passes plus the W0
stale-pragma check.  Findings come back in one report with stable
ordering (sorted by path, line, column, rule).

Flow runs support three orthogonal speedups/controls:

- ``cache_path``: per-file content-hash memoisation of everything derived
  from one file alone (parse, syntactic findings, pragma maps, flow IR),
  plus a whole-corpus key memoising the propagation result (sound because
  propagation is a pure function of the summaries) — so a fully warm run
  does little more than hash the sources;
- ``baseline_path``: suppress known findings by (rule, path, message)
  with a justification each; stale entries surface as W0;
- ``restrict_paths``: report only findings anchored in the given display
  paths (``--changed`` uses this — the *analysis* still covers the whole
  corpus, because flow facts are interprocedural).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.lint.contracts import check_engine_contracts
from repro.lint.findings import Finding, LintReport
from repro.lint.rules import (
    apply_suppressions,
    check_module,
    check_module_raw,
    comment_pragmas,
    suppressed_rules,
)

PathLike = Union[str, Path]


def iter_source_files(paths: Sequence[PathLike]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen = set()
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise ConfigurationError(f"lint path {str(raw)!r} does not exist")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                out.append(candidate)
    return out


def _display_path(path: Path) -> str:
    """Stable display form: relative to the working directory when possible."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_source(source: str, path: str) -> List[Finding]:
    """Findings for one module given as text (fixture tests use this)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [
            Finding(
                rule="PARSE",
                path=path,
                line=err.lineno or 1,
                col=err.offset or 1,
                message=f"syntax error: {err.msg}",
            )
        ]
    return check_module(tree, source, path)


def _compute_facts(display: str, source: str, want_summary: bool) -> "FileFacts":
    """Derive everything one lint run needs from one file's text."""
    from repro.lint.flow.cache import FileFacts

    tree: Optional[ast.Module] = None
    try:
        tree = ast.parse(source, filename=display)
        raw = check_module_raw(tree, display)
    except SyntaxError as err:
        raw = [
            Finding(
                rule="PARSE",
                path=display,
                line=err.lineno or 1,
                col=err.offset or 1,
                message=f"syntax error: {err.msg}",
            )
        ]
    summary = None
    if want_summary:
        from repro.lint.flow import extract_summary
        from repro.lint.flow.summary import ModuleSummary

        summary = (
            extract_summary(tree, display) if tree is not None
            else ModuleSummary(path=display)
        )
    return FileFacts(
        display=display,
        raw=raw,
        suppress=suppressed_rules(source),
        pragma_lines=sorted(comment_pragmas(source)),
        summary=summary,
    )


def lint_paths(
    paths: Sequence[PathLike] = ("src",),
    include_contracts: bool = True,
    *,
    flow: bool = False,
    cache_path: Optional[str] = None,
    baseline_path: Optional[str] = None,
    restrict_paths: Optional[Sequence[str]] = None,
) -> LintReport:
    """Lint *paths* (files or directories) and return the full report.

    *include_contracts* additionally runs the R3 registry checks against
    every currently registered engine spec; they are global (not tied to
    the scanned files) because the registry is process-global state.
    *flow* adds the interprocedural R7/R8/R9 passes over the same file
    set and, because only the full rule set can decide staleness, the W0
    stale-pragma check.
    """
    files = iter_source_files(paths)
    sources: Dict[str, str] = {}
    for path in files:
        sources[_display_path(path)] = path.read_text()

    flow_stats: Dict[str, object] = {
        "enabled": False,
        "modules": 0,
        "functions": 0,
        "cache_hits": 0,
        "cache_misses": 0,
    }
    facts_by_display: Dict[str, Any] = {}
    flow_findings: List[Finding] = []
    if flow:
        from repro.lint.flow import analyze_flow, flow_function_count
        from repro.lint.flow.cache import SummaryCache, content_hash, corpus_key

        cache = SummaryCache(cache_path)
        hashes: Dict[str, str] = {}
        for display in sorted(sources):
            source_hash = content_hash(sources[display])
            hashes[display] = source_hash
            facts = cache.get_facts(display, source_hash)
            if facts is None:
                facts = _compute_facts(display, sources[display], want_summary=True)
                cache.put_facts(display, source_hash, facts)
            facts_by_display[display] = facts

        summaries = [facts_by_display[d].summary for d in sorted(facts_by_display)]
        key = corpus_key(hashes)
        cached = cache.get_result(key)
        if cached is not None:
            flow_findings = [Finding(**entry) for entry in cached]
        else:
            flow_findings = analyze_flow(summaries)
            cache.set_result(key, [f.as_dict() for f in flow_findings])
        cache.prune(sources.keys())
        cache.save()

        modules, functions = flow_function_count(summaries)
        flow_stats = {
            "enabled": True,
            "modules": modules,
            "functions": functions,
            "cache_hits": cache.hits,
            "cache_misses": cache.misses,
        }
    else:
        for display in sorted(sources):
            facts_by_display[display] = _compute_facts(
                display, sources[display], want_summary=False
            )

    per_file: Dict[str, List[Finding]] = {
        display: list(facts_by_display[display].raw)
        for display in facts_by_display
    }
    for finding in flow_findings:
        per_file.setdefault(finding.path, []).append(finding)

    # Pragma suppression is applied centrally so used pragma lines are
    # known; W0 then flags the (real-comment) pragmas that earned nothing.
    findings: List[Finding] = []
    for display in sorted(per_file):
        facts = facts_by_display.get(display)
        if facts is None:
            continue
        kept, used_lines = apply_suppressions(per_file[display], facts.suppress)
        per_file[display] = kept
        if flow:
            for line in facts.pragma_lines:
                if line not in used_lines:
                    per_file[display].append(
                        Finding(
                            rule="W0",
                            path=display,
                            line=line,
                            col=1,
                            message=(
                                "stale '# lint-ok' pragma: suppresses no "
                                "finding under the full rule set"
                            ),
                            severity="warning",
                        )
                    )

    findings.extend(f for display in sorted(per_file) for f in per_file[display])

    contracts_checked = 0
    if include_contracts:
        from repro.engine.registry import available_engines

        contracts_checked = len(available_engines())
        findings.extend(check_engine_contracts())

    baseline_stats: Dict[str, object] = {"path": None, "suppressed": 0, "stale": 0}
    if baseline_path is not None:
        from repro.lint.flow.baseline import apply_baseline, load_baseline

        baseline = load_baseline(baseline_path)
        findings, suppressed, stale = apply_baseline(findings, baseline)
        findings.extend(stale)
        baseline_stats = {
            "path": baseline_path,
            "suppressed": suppressed,
            "stale": len(stale),
        }

    if restrict_paths is not None:
        allowed = set(restrict_paths)
        if baseline_path is not None:
            allowed.add(baseline_path)  # stale-entry warnings always surface
        findings = [f for f in findings if f.path in allowed]

    return LintReport(
        findings=sorted(findings, key=Finding.sort_key),
        files_checked=len(files),
        contracts_checked=contracts_checked,
        flow=flow_stats,
        baseline=baseline_stats,
    )
