"""Walks files, parses them and assembles the :class:`LintReport`.

The runner is what the CLI subcommand calls: it expands file/directory
arguments into a deterministic file list, runs the syntactic rules per
file, optionally appends the R3 registry-conformance findings, and returns
one report with stable ordering (sorted by path, line, column, rule).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import List, Sequence, Union

from repro.errors import ConfigurationError
from repro.lint.contracts import check_engine_contracts
from repro.lint.findings import Finding, LintReport
from repro.lint.rules import check_module

PathLike = Union[str, Path]


def iter_source_files(paths: Sequence[PathLike]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen = set()
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.is_file():
            candidates = [path]
        else:
            raise ConfigurationError(f"lint path {str(raw)!r} does not exist")
        for candidate in candidates:
            if candidate not in seen:
                seen.add(candidate)
                out.append(candidate)
    return out


def _display_path(path: Path) -> str:
    """Stable display form: relative to the working directory when possible."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_source(source: str, path: str) -> List[Finding]:
    """Findings for one module given as text (fixture tests use this)."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as err:
        return [
            Finding(
                rule="PARSE",
                path=path,
                line=err.lineno or 1,
                col=err.offset or 1,
                message=f"syntax error: {err.msg}",
            )
        ]
    return check_module(tree, source, path)


def lint_paths(
    paths: Sequence[PathLike] = ("src",),
    include_contracts: bool = True,
) -> LintReport:
    """Lint *paths* (files or directories) and return the full report.

    *include_contracts* additionally runs the R3 registry checks against
    every currently registered engine spec; they are global (not tied to
    the scanned files) because the registry is process-global state.
    """
    findings: List[Finding] = []
    files = iter_source_files(paths)
    for path in files:
        findings.extend(lint_source(path.read_text(), _display_path(path)))

    contracts_checked = 0
    if include_contracts:
        from repro.engine.registry import available_engines

        contracts_checked = len(available_engines())
        findings.extend(check_engine_contracts())

    return LintReport(
        findings=sorted(findings, key=Finding.sort_key),
        files_checked=len(files),
        contracts_checked=contracts_checked,
    )
