"""Finding records and the versioned machine-readable lint report.

The JSON layout (``LintReport.as_dict``) is a stable contract: CI uploads
it as an artifact and downstream tooling parses it, so the schema carries
an explicit version that must be bumped on any incompatible change.  The
test suite pins the schema (``tests/test_lint.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: Bump on any incompatible change to :meth:`LintReport.as_dict`.
#: v2: findings carry ``severity``; the report gains ``flow`` and
#: ``baseline`` sections and a ``by_severity`` summary; rules R7-R9 and
#: the W0 warning join the rule table.
REPORT_SCHEMA_VERSION = 2

#: Rule identifiers and the convention each one enforces.
RULE_DESCRIPTIONS: Dict[str, str] = {
    "R1": (
        "randomness must be explicitly seeded: no seedless or module-level "
        "np.random construction outside engine/rng.py, no legacy global-state API"
    ),
    "R2": (
        "dtype discipline in engine/quantization hot paths: array allocations "
        "need an explicit dtype; no float32/float64 mixing in one expression"
    ),
    "R3": (
        "engine-registry conformance: every EngineSpec factory resolves to a "
        "PresentationEngine whose implemented methods match its declared capabilities"
    ),
    "R4": (
        "no mutable default arguments; parameters defaulting to None must be "
        "annotated Optional"
    ),
    "R5": (
        "no bare 'except:' or blanket 'except Exception' outside the "
        "resilience package: catch specific error types; broad catches are "
        "reserved for sanctioned fault-isolation boundaries"
    ),
    "R6": (
        "backend discipline in backend-generic kernels: array creation and "
        "conversion must go through the xp module / Ops converters of "
        "repro.backend, not numpy directly — np.asarray and friends do not "
        "dispatch to the active backend and silently strip device residency"
    ),
    "R7": (
        "integer width flow: a uint8/uint16 Q-format code value that is "
        "widened (cast, sum, arithmetic) must pass through a saturating "
        "clip before it is narrowed or stored back into code storage"
    ),
    "R8": (
        "device-residency flow: an Ops-owned array (xp-created or "
        "to_device-uploaded) must never reach the host-only np.asarray "
        "conversion family, directly or through any analyzed call chain; "
        "cross with ops.to_host at the boundary"
    ),
    "R9": (
        "RNG-stream provenance: every named RngStreams draw site must be "
        "declared in the STREAM_CONSUMERS manifest of engine/rng.py; "
        "unknown streams, undeclared or silent consumers, unreserved dead "
        "streams and draw-parity breaks between engine tiers are flagged"
    ),
    "W0": (
        "stale suppression: a '# lint-ok' pragma that suppresses no "
        "finding under the full rule set, or a baseline entry matching no "
        "current finding, should be removed"
    ),
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    severity: str = "error"  # "error" | "warning" (W0)

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class LintReport:
    """The outcome of one lint run: findings plus coverage counters."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    contracts_checked: int = 0
    #: Flow-analysis coverage: enabled flag, modules/functions analyzed
    #: and summary-cache hit/miss counters.
    flow: Dict[str, Any] = field(
        default_factory=lambda: {
            "enabled": False,
            "modules": 0,
            "functions": 0,
            "cache_hits": 0,
            "cache_misses": 0,
        }
    )
    #: Baseline suppression: file used (or None) and match counters.
    baseline: Dict[str, Any] = field(
        default_factory=lambda: {"path": None, "suppressed": 0, "stale": 0}
    )

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts_by_rule(self) -> Dict[str, int]:
        """Findings per rule id; every known rule appears, even at zero."""
        counts = {rule: 0 for rule in RULE_DESCRIPTIONS}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def counts_by_severity(self) -> Dict[str, int]:
        counts = {"error": 0, "warning": 0}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "tool": "repro-lint",
            "rules": dict(RULE_DESCRIPTIONS),
            "files_checked": self.files_checked,
            "contracts_checked": self.contracts_checked,
            "flow": dict(self.flow),
            "baseline": dict(self.baseline),
            "summary": {
                "total": len(self.findings),
                "by_rule": self.counts_by_rule(),
                "by_severity": self.counts_by_severity(),
            },
            "findings": [f.as_dict() for f in sorted(self.findings, key=Finding.sort_key)],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def format_text(self) -> str:
        lines = [f.format() for f in sorted(self.findings, key=Finding.sort_key)]
        scope = (
            f"{self.files_checked} files, "
            f"{self.contracts_checked} registered engine specs"
        )
        if self.flow.get("enabled"):
            scope += (
                f", flow over {self.flow['modules']} modules"
                f"/{self.flow['functions']} functions"
            )
        if self.baseline.get("suppressed"):
            scope += f", {self.baseline['suppressed']} baselined"
        if not self.findings:
            lines.append(f"checked {scope}: clean")
        else:
            by_rule = ", ".join(
                f"{rule}={n}" for rule, n in self.counts_by_rule().items() if n
            )
            lines.append(f"checked {scope}: {len(self.findings)} findings ({by_rule})")
        return "\n".join(lines)
