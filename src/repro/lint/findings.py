"""Finding records and the versioned machine-readable lint report.

The JSON layout (``LintReport.as_dict``) is a stable contract: CI uploads
it as an artifact and downstream tooling parses it, so the schema carries
an explicit version that must be bumped on any incompatible change.  The
test suite pins the schema (``tests/test_lint.py``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: Bump on any incompatible change to :meth:`LintReport.as_dict`.
REPORT_SCHEMA_VERSION = 1

#: Rule identifiers and the convention each one enforces.
RULE_DESCRIPTIONS: Dict[str, str] = {
    "R1": (
        "randomness must be explicitly seeded: no seedless or module-level "
        "np.random construction outside engine/rng.py, no legacy global-state API"
    ),
    "R2": (
        "dtype discipline in engine/quantization hot paths: array allocations "
        "need an explicit dtype; no float32/float64 mixing in one expression"
    ),
    "R3": (
        "engine-registry conformance: every EngineSpec factory resolves to a "
        "PresentationEngine whose implemented methods match its declared capabilities"
    ),
    "R4": (
        "no mutable default arguments; parameters defaulting to None must be "
        "annotated Optional"
    ),
    "R5": (
        "no bare 'except:' or blanket 'except Exception' outside the "
        "resilience package: catch specific error types; broad catches are "
        "reserved for sanctioned fault-isolation boundaries"
    ),
    "R6": (
        "backend discipline in backend-generic kernels: array creation and "
        "conversion must go through the xp module / Ops converters of "
        "repro.backend, not numpy directly — np.asarray and friends do not "
        "dispatch to the active backend and silently strip device residency"
    ),
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class LintReport:
    """The outcome of one lint run: findings plus coverage counters."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    contracts_checked: int = 0

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts_by_rule(self) -> Dict[str, int]:
        """Findings per rule id; every known rule appears, even at zero."""
        counts = {rule: 0 for rule in RULE_DESCRIPTIONS}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "tool": "repro-lint",
            "rules": dict(RULE_DESCRIPTIONS),
            "files_checked": self.files_checked,
            "contracts_checked": self.contracts_checked,
            "summary": {
                "total": len(self.findings),
                "by_rule": self.counts_by_rule(),
            },
            "findings": [f.as_dict() for f in sorted(self.findings, key=Finding.sort_key)],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def format_text(self) -> str:
        lines = [f.format() for f in sorted(self.findings, key=Finding.sort_key)]
        scope = (
            f"{self.files_checked} files, "
            f"{self.contracts_checked} registered engine specs"
        )
        if not self.findings:
            lines.append(f"checked {scope}: clean")
        else:
            by_rule = ", ".join(
                f"{rule}={n}" for rule, n in self.counts_by_rule().items() if n
            )
            lines.append(f"checked {scope}: {len(self.findings)} findings ({by_rule})")
        return "\n".join(lines)
