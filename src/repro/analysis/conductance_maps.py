"""Learned-feature conductance maps and their quality metrics (Fig. 5).

Fig. 5 visualises each neuron's afferent conductances reshaped into the
image plane: a well-trained neuron shows a bright class-specific pattern on
a dark background; a failed run shows uniform grey blur ("all synapses
learns the overlapping features of all classes").  Since this harness is
text-only, maps render as ASCII and quality is quantified:

- :func:`map_contrast` — per-map normalised spread (high = crisp feature);
- :func:`population_selectivity` — how dissimilar the population's maps are
  from each other (low = everyone learned the same blob, the deterministic
  failure mode on Fashion).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import TopologyError

#: Dark-to-bright ramp for ASCII rendering.
_ASCII_RAMP = " .:-=+*#%@"


def neuron_maps(conductances: np.ndarray, side: Optional[int] = None) -> np.ndarray:
    """Reshape ``(n_pixels, n_neurons)`` into ``(n_neurons, side, side)``."""
    g = np.asarray(conductances, dtype=np.float64)
    if g.ndim != 2:
        raise TopologyError(f"conductances must be 2-D, got shape {g.shape}")
    n_pixels = g.shape[0]
    if side is None:
        side = int(round(n_pixels**0.5))
    if side * side != n_pixels:
        raise TopologyError(f"n_pixels={n_pixels} is not {side}x{side}")
    return g.T.reshape(g.shape[1], side, side)


def map_contrast(conductances: np.ndarray) -> np.ndarray:
    """Per-neuron contrast: (p90 - p10) of its map, normalised by the range.

    0 means a flat map (no feature learned); values toward 1 mean strong
    bright-vs-dark separation.  Returns shape ``(n_neurons,)``.
    """
    g = np.asarray(conductances, dtype=np.float64)
    if g.ndim != 2:
        raise TopologyError(f"conductances must be 2-D, got shape {g.shape}")
    lo = np.percentile(g, 10, axis=0)
    hi = np.percentile(g, 90, axis=0)
    full = g.max() - g.min()
    if full <= 0:
        return np.zeros(g.shape[1])
    return (hi - lo) / full


def population_selectivity(conductances: np.ndarray) -> float:
    """Mean pairwise (1 - cosine similarity) between neuron maps.

    Near 0: every neuron learned the same pattern (the Fig. 5a failure of
    deterministic STDP on Fashion).  Larger: diverse class-specific
    features.  Neurons with all-zero maps are excluded.
    """
    g = np.asarray(conductances, dtype=np.float64)
    if g.ndim != 2:
        raise TopologyError(f"conductances must be 2-D, got shape {g.shape}")
    norms = np.linalg.norm(g, axis=0)
    live = g[:, norms > 0]
    if live.shape[1] < 2:
        return 0.0
    unit = live / np.linalg.norm(live, axis=0)
    similarity = unit.T @ unit
    n = similarity.shape[0]
    off_diagonal = similarity[~np.eye(n, dtype=bool)]
    return float(np.mean(1.0 - off_diagonal))


def ascii_map(map2d: np.ndarray, g_min: float = 0.0, g_max: Optional[float] = None) -> str:
    """Render one neuron map as an ASCII block (the text Fig. 5)."""
    arr = np.asarray(map2d, dtype=np.float64)
    if arr.ndim != 2:
        raise TopologyError(f"map must be 2-D, got shape {arr.shape}")
    top = g_max if g_max is not None else max(arr.max(), g_min + 1e-9)
    span = max(top - g_min, 1e-9)
    levels = np.clip((arr - g_min) / span, 0.0, 1.0)
    indices = np.minimum((levels * len(_ASCII_RAMP)).astype(int), len(_ASCII_RAMP) - 1)
    return "\n".join("".join(_ASCII_RAMP[i] for i in row) for row in indices)
