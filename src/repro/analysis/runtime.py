"""Run-time bookkeeping: wall clock, simulated time, speedups.

The paper reports two distinct time axes and both appear in the benches:

- *simulated time* — biological milliseconds of network activity (542 min
  to learn 60k MNIST images at 500 ms/image; 131 min at 100 ms/image).
  This is a property of the schedule, independent of the host machine.
- *wall-clock time* — how long the simulator itself takes, the Fig. 4
  engine-performance axis.

:class:`RuntimeComparison` pairs named measurements and produces speedup
ratios; :func:`time_callable` is a tiny best-of-N timer.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.errors import SimulationError


def time_callable(fn: Callable[[], object], repeats: int = 3) -> float:
    """Best-of-*repeats* wall-clock seconds for ``fn()``."""
    if repeats < 1:
        raise SimulationError(f"repeats must be >= 1, got {repeats}")
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def simulated_learning_minutes(n_images: int, t_learn_ms: float, t_rest_ms: float = 0.0) -> float:
    """The paper's total-simulation-time metric for a learning schedule."""
    if n_images < 0:
        raise SimulationError(f"n_images must be >= 0, got {n_images}")
    return n_images * (t_learn_ms + t_rest_ms) / 60_000.0


@dataclass
class RuntimeComparison:
    """Named wall-clock measurements with pairwise speedups."""

    measurements: Dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        if seconds < 0:
            raise SimulationError(f"negative duration for {name!r}: {seconds}")
        self.measurements[name] = seconds

    def measure(self, name: str, fn: Callable[[], object], repeats: int = 3) -> float:
        seconds = time_callable(fn, repeats)
        self.add(name, seconds)
        return seconds

    def speedup(self, slow: str, fast: str) -> float:
        """How many times faster *fast* is than *slow*."""
        for name in (slow, fast):
            if name not in self.measurements:
                raise SimulationError(f"no measurement named {name!r}")
        fast_s = self.measurements[fast]
        if fast_s <= 0:
            return float("inf")
        return self.measurements[slow] / fast_s

    def as_rows(self):
        """``(name, seconds)`` rows sorted slowest first, for report tables."""
        return sorted(self.measurements.items(), key=lambda kv: -kv[1])
