"""Conductance distribution statistics (Fig. 6b).

Fig. 6b compares the histogram of all synapse conductances after Q1.7
training: stochastic STDP keeps a spread distribution, while deterministic
STDP drops "a large portion of synapses ... to the minimal conductance
value".  :func:`saturation_fractions` quantifies exactly that collapse.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import TopologyError


def conductance_histogram(
    conductances: np.ndarray,
    bins: int = 16,
    g_min: float = 0.0,
    g_max: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Histogram over ``[g_min, g_max]``: ``(bin_edges, fractions)``.

    Fractions sum to 1 over all synapses (values outside the range are
    clipped into the boundary bins).
    """
    if bins < 1:
        raise TopologyError(f"bins must be >= 1, got {bins}")
    if g_max <= g_min:
        raise TopologyError(f"need g_max > g_min, got [{g_min}, {g_max}]")
    g = np.clip(np.asarray(conductances, dtype=np.float64).ravel(), g_min, g_max)
    counts, edges = np.histogram(g, bins=bins, range=(g_min, g_max))
    total = max(g.size, 1)
    return edges, counts / total


def saturation_fractions(
    conductances: np.ndarray,
    g_min: float = 0.0,
    g_max: float = 1.0,
    tolerance: float = 1e-9,
) -> Dict[str, float]:
    """Fractions of synapses pinned at the range boundaries.

    Returns ``{"at_min": ..., "at_max": ..., "interior": ...}``.  The
    deterministic low-precision failure shows up as a large ``at_min``.
    """
    g = np.asarray(conductances, dtype=np.float64).ravel()
    if g.size == 0:
        raise TopologyError("conductance array is empty")
    at_min = float(np.mean(g <= g_min + tolerance))
    at_max = float(np.mean(g >= g_max - tolerance))
    return {"at_min": at_min, "at_max": at_max, "interior": 1.0 - at_min - at_max}


def distribution_entropy(
    conductances: np.ndarray, bins: int = 16, g_min: float = 0.0, g_max: float = 1.0
) -> float:
    """Shannon entropy (bits) of the binned conductance distribution.

    A healthy learned state keeps several occupied levels; total collapse
    to one bin gives entropy 0.  Used by the Fig. 6b bench as a single
    summary number alongside the histogram.
    """
    _, fractions = conductance_histogram(conductances, bins, g_min, g_max)
    p = fractions[fractions > 0]
    return float(-(p * np.log2(p)).sum())
