"""Spike-train statistics: ISI distributions, CV, Fano factor.

Quantifies the input/output spike trains the paper shows as raster dots
(Fig. 6a): a Poisson train has ISI coefficient-of-variation ~1 and Fano
factor ~1; a strictly periodic train has both near 0.  These statistics
back the Poisson-vs-periodic encoder ablation and characterise the output
regularity of the WTA layer.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.errors import SimulationError


def interspike_intervals(spike_times_ms: Sequence[float]) -> np.ndarray:
    """Sorted inter-spike intervals of one train (empty for < 2 spikes)."""
    times = np.sort(np.asarray(list(spike_times_ms), dtype=np.float64))
    if times.size < 2:
        return np.array([])
    return np.diff(times)


def isi_cv(spike_times_ms: Sequence[float]) -> float:
    """Coefficient of variation of the ISIs (~1 Poisson, ~0 periodic).

    Returns NaN when fewer than two intervals exist.
    """
    isis = interspike_intervals(spike_times_ms)
    if isis.size < 2 or isis.mean() == 0:
        return float("nan")
    return float(isis.std() / isis.mean())


def fano_factor(
    spike_times_ms: Sequence[float], duration_ms: float, window_ms: float = 100.0
) -> float:
    """Variance/mean of spike counts in consecutive windows (~1 Poisson).

    Returns NaN when there are fewer than two windows or no spikes.
    """
    if duration_ms <= 0 or window_ms <= 0:
        raise SimulationError("duration_ms and window_ms must be positive")
    n_windows = int(duration_ms // window_ms)
    if n_windows < 2:
        return float("nan")
    times = np.asarray(list(spike_times_ms), dtype=np.float64)
    counts, _ = np.histogram(times, bins=n_windows, range=(0.0, n_windows * window_ms))
    mean = counts.mean()
    if mean == 0:
        return float("nan")
    return float(counts.var() / mean)


def raster_train_statistics(
    raster: np.ndarray, dt_ms: float = 1.0, window_ms: float = 100.0
) -> Dict[str, float]:
    """Aggregate regularity statistics over all channels of a raster.

    Returns mean rate (Hz), mean ISI CV and mean Fano factor across the
    channels that spiked enough to measure.
    """
    arr = np.asarray(raster, dtype=bool)
    if arr.ndim != 2:
        raise SimulationError(f"raster must be 2-D, got shape {arr.shape}")
    duration_ms = arr.shape[0] * dt_ms
    rates = []
    cvs = []
    fanos = []
    for channel in range(arr.shape[1]):
        times = np.flatnonzero(arr[:, channel]) * dt_ms
        rates.append(times.size / (duration_ms / 1000.0))
        cv = isi_cv(times)
        if not np.isnan(cv):
            cvs.append(cv)
        fano = fano_factor(times, duration_ms, window_ms)
        if not np.isnan(fano):
            fanos.append(fano)
    return {
        "mean_rate_hz": float(np.mean(rates)) if rates else 0.0,
        "mean_isi_cv": float(np.mean(cvs)) if cvs else float("nan"),
        "mean_fano": float(np.mean(fanos)) if fanos else float("nan"),
        "n_channels_measured": float(len(cvs)),
    }


def synchrony_index(raster: np.ndarray) -> float:
    """Population synchrony: variance of the population rate, normalised.

    0 for independent channels, toward 1 when channels co-fire.  Computed as
    ``var(sum_t) / sum(var_i)`` over channels (Golomb's measure).
    """
    arr = np.asarray(raster, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] < 2:
        raise SimulationError("raster must be 2-D with at least 2 steps")
    population = arr.sum(axis=1)
    per_channel_var = arr.var(axis=0).sum()
    if per_channel_var == 0:
        return 0.0
    return float(population.var() / per_channel_var)
