"""Image-file export for figures (no plotting dependencies).

Writes the paper's visual artefacts as portable graymap/pixmap files that
any image viewer opens:

- :func:`write_pgm` — one 2-D array as an 8-bit binary PGM;
- :func:`save_conductance_grid` — the Fig. 5 panel: every neuron's learned
  map tiled into one image, each tile independently normalised;
- :func:`save_raster_image` — the Fig. 6a panel: a spike raster as a
  black/white bitmap (time on x, channel on y).

Used by the figure benches when ``REPRO_SAVE_IMAGES`` is set, and available
to downstream users who want real image files instead of ASCII art.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.analysis.conductance_maps import neuron_maps
from repro.errors import ReproError


def write_pgm(path: Union[str, Path], image: np.ndarray) -> None:
    """Write a 2-D float/int array as an 8-bit binary PGM (P5).

    Float input is expected in [0, 1] and is scaled to [0, 255]; integer
    input is written as-is (clipped to [0, 255]).
    """
    arr = np.asarray(image)
    if arr.ndim != 2:
        raise ReproError(f"PGM image must be 2-D, got shape {arr.shape}")
    if arr.dtype.kind == "f":
        data = np.clip(arr * 255.0, 0, 255).astype(np.uint8)
    else:
        data = np.clip(arr, 0, 255).astype(np.uint8)
    header = f"P5\n{data.shape[1]} {data.shape[0]}\n255\n".encode("ascii")
    Path(path).write_bytes(header + data.tobytes())


def read_pgm(path: Union[str, Path]) -> np.ndarray:
    """Read back a binary PGM written by :func:`write_pgm` (for tests)."""
    raw = Path(path).read_bytes()
    if not raw.startswith(b"P5"):
        raise ReproError(f"{path} is not a binary PGM")
    parts = raw.split(b"\n", 3)
    if len(parts) < 4:
        raise ReproError(f"{path}: truncated PGM header")
    width, height = (int(x) for x in parts[1].split())
    maxval = int(parts[2])
    if maxval != 255:
        raise ReproError(f"{path}: only 8-bit PGMs supported")
    body = parts[3]
    if len(body) < width * height:
        raise ReproError(f"{path}: truncated PGM payload")
    return np.frombuffer(body[: width * height], dtype=np.uint8).reshape(height, width)


def save_conductance_grid(
    path: Union[str, Path],
    conductances: np.ndarray,
    columns: int = 8,
    padding: int = 1,
    side: Optional[int] = None,
) -> np.ndarray:
    """Tile all neuron maps into one PGM (the Fig. 5 gallery).

    Each tile is normalised to its own [min, max] so faint features stay
    visible.  Returns the composed image array (also written to *path*).
    """
    if columns < 1:
        raise ReproError(f"columns must be >= 1, got {columns}")
    maps = neuron_maps(conductances, side=side)
    n, h, w = maps.shape
    rows = (n + columns - 1) // columns
    canvas = np.zeros((rows * (h + padding) + padding, columns * (w + padding) + padding))
    for i in range(n):
        r, c = divmod(i, columns)
        tile = maps[i]
        span = tile.max() - tile.min()
        tile = (tile - tile.min()) / span if span > 0 else np.zeros_like(tile)
        y = padding + r * (h + padding)
        x = padding + c * (w + padding)
        canvas[y : y + h, x : x + w] = tile
    write_pgm(path, canvas)
    return canvas


def save_raster_image(path: Union[str, Path], raster: np.ndarray) -> np.ndarray:
    """Write a boolean spike raster as a black/white PGM (Fig. 6a).

    Rows are channels, columns are time steps; a spike is a white pixel.
    """
    arr = np.asarray(raster, dtype=bool)
    if arr.ndim != 2:
        raise ReproError(f"raster must be 2-D, got shape {arr.shape}")
    image = arr.T.astype(np.float64)  # (channels, steps)
    write_pgm(path, image)
    return image
