"""Accuracy metrics: scores, confusion matrices, moving error rate.

The moving error rate is the Fig. 8c quantity: error measured over a sliding
window of recent predictions as training progresses, showing how quickly
each configuration's error falls with simulation time.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import LabelingError


def _check_pair(true: np.ndarray, predicted: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    t = np.asarray(true, dtype=np.int64)
    p = np.asarray(predicted, dtype=np.int64)
    if t.shape != p.shape or t.ndim != 1:
        raise LabelingError(
            f"true {t.shape} and predicted {p.shape} must be equal-length 1-D arrays"
        )
    return t, p


def accuracy_score(true: np.ndarray, predicted: np.ndarray) -> float:
    """Fraction of matching labels; empty input scores 0."""
    t, p = _check_pair(true, predicted)
    if t.size == 0:
        return 0.0
    return float(np.mean(t == p))


def confusion_matrix(true: np.ndarray, predicted: np.ndarray, n_classes: int) -> np.ndarray:
    """``counts[i, j]`` = images of class *i* predicted as class *j*.

    Predictions outside ``[0, n_classes)`` (e.g. the unlabeled sentinel)
    are tallied in an extra final column.
    """
    t, p = _check_pair(true, predicted)
    if n_classes < 1:
        raise LabelingError(f"n_classes must be >= 1, got {n_classes}")
    if t.size and (t.min() < 0 or t.max() >= n_classes):
        raise LabelingError("true labels out of range")
    counts = np.zeros((n_classes, n_classes + 1), dtype=np.int64)
    for ti, pi in zip(t, p):
        col = pi if 0 <= pi < n_classes else n_classes
        counts[ti, col] += 1
    return counts


def per_class_accuracy(true: np.ndarray, predicted: np.ndarray, n_classes: int) -> np.ndarray:
    """Accuracy per true class; classes with no samples report NaN."""
    confusion = confusion_matrix(true, predicted, n_classes)
    totals = confusion.sum(axis=1).astype(np.float64)
    correct = np.diag(confusion[:, :n_classes]).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, correct / np.maximum(totals, 1), np.nan)


def moving_error_rate(
    correct_flags: Sequence[bool], window: int = 50
) -> Tuple[np.ndarray, np.ndarray]:
    """Sliding-window error over a prediction stream (Fig. 8c).

    *correct_flags* is the chronological sequence of per-image hits.
    Returns ``(positions, error_rates)``; the window is truncated at the
    start so the curve begins at the first prediction.
    """
    if window < 1:
        raise LabelingError(f"window must be >= 1, got {window}")
    flags = np.asarray(list(correct_flags), dtype=np.float64)
    if flags.ndim != 1:
        raise LabelingError("correct_flags must be 1-D")
    if flags.size == 0:
        return np.array([]), np.array([])
    cumsum = np.concatenate([[0.0], np.cumsum(flags)])
    positions = np.arange(1, flags.size + 1)
    starts = np.maximum(positions - window, 0)
    hits = cumsum[positions] - cumsum[starts]
    widths = positions - starts
    return positions, 1.0 - hits / widths
