"""Plain-text table formatting for bench output and EXPERIMENTS.md.

Every bench prints its reproduction of a paper table/figure through
:func:`format_table`, so the harness output and the recorded results share
one format (GitHub-flavoured Markdown pipes, also readable as plain text).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro.errors import ReproError


def _render_cell(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """A Markdown table with aligned columns.

    Floats render at *precision* decimals; booleans as yes/no.  Raises if a
    row's width does not match the header.
    """
    header_list = [str(h) for h in headers]
    if not header_list:
        raise ReproError("table needs at least one column")
    rendered: List[List[str]] = []
    for row in rows:
        cells = [_render_cell(v, precision) for v in row]
        if len(cells) != len(header_list):
            raise ReproError(
                f"row has {len(cells)} cells but table has {len(header_list)} columns"
            )
        rendered.append(cells)

    widths = [len(h) for h in header_list]
    for cells in rendered:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    parts = []
    if title:
        parts.append(f"### {title}")
        parts.append("")
    parts.append(line(header_list))
    parts.append("|" + "|".join("-" * (w + 2) for w in widths) + "|")
    parts.extend(line(cells) for cells in rendered)
    return "\n".join(parts)
