"""Spike-raster utilities (Fig. 6a).

Fig. 6a shows input spike trains at low vs high frequency ("each dot
represents one spike") — the high-frequency raster makes the digit's dark
region visibly denser.  These helpers turn monitor events or boolean raster
arrays into densities and ASCII dot plots.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.engine.monitors import SpikeMonitor
from repro.errors import SimulationError


def raster_from_monitor(
    monitor: SpikeMonitor, n_neurons: int, duration_ms: float, dt_ms: float = 1.0
) -> np.ndarray:
    """Boolean raster ``(n_steps, n_neurons)`` from a spike monitor."""
    if n_neurons < 1:
        raise SimulationError(f"n_neurons must be >= 1, got {n_neurons}")
    n_steps = int(round(duration_ms / dt_ms))
    raster = np.zeros((n_steps, n_neurons), dtype=bool)
    times, indices = monitor.events()
    for t, i in zip(times, indices):
        step = int(t / dt_ms)
        if 0 <= step < n_steps and 0 <= i < n_neurons:
            raster[step, i] = True
    return raster


def spike_density(raster: np.ndarray) -> Tuple[np.ndarray, float]:
    """Per-channel spike counts and the overall density of a raster.

    Returns ``(counts_per_channel, fraction_of_cells_active)``.
    """
    arr = np.asarray(raster, dtype=bool)
    if arr.ndim != 2:
        raise SimulationError(f"raster must be 2-D, got shape {arr.shape}")
    counts = arr.sum(axis=0)
    density = float(arr.mean()) if arr.size else 0.0
    return counts, density


def mean_rate_hz(raster: np.ndarray, dt_ms: float = 1.0) -> float:
    """Population mean firing rate implied by a boolean raster."""
    arr = np.asarray(raster, dtype=bool)
    if arr.ndim != 2 or arr.size == 0:
        raise SimulationError(f"raster must be non-empty 2-D, got shape {arr.shape}")
    duration_s = arr.shape[0] * dt_ms / 1000.0
    return float(arr.sum() / (arr.shape[1] * duration_s))


def ascii_raster(
    raster: np.ndarray, max_channels: int = 40, max_steps: int = 120
) -> str:
    """Dot plot of a raster: rows = channels, columns = time (Fig. 6a).

    Large rasters are subsampled to at most ``max_channels`` rows and
    ``max_steps`` columns (a cell is '|' if any subsumed step spiked).
    """
    arr = np.asarray(raster, dtype=bool)
    if arr.ndim != 2:
        raise SimulationError(f"raster must be 2-D, got shape {arr.shape}")
    steps, channels = arr.shape
    row_stride = max(1, channels // max_channels)
    col_stride = max(1, steps // max_steps)
    lines = []
    for ch in range(0, channels, row_stride):
        cells = []
        for st in range(0, steps, col_stride):
            block = arr[st : st + col_stride, ch : ch + row_stride]
            cells.append("|" if block.any() else ".")
        lines.append("".join(cells))
    return "\n".join(lines)
