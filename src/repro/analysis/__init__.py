"""Analysis and reporting: the quantities the paper's figures plot.

- :mod:`repro.analysis.accuracy` — accuracy, confusion matrices and the
  moving error rate (Fig. 8c).
- :mod:`repro.analysis.conductance_maps` — per-neuron learned-feature maps
  and contrast/selectivity metrics (Fig. 5).
- :mod:`repro.analysis.distributions` — conductance histograms and
  saturation statistics (Fig. 6b).
- :mod:`repro.analysis.rasters` — spike-raster extraction and ASCII
  rendering (Fig. 6a).
- :mod:`repro.analysis.runtime` — wall-clock/simulated-time bookkeeping and
  speedup ratios (Figs. 4, 7b, 8b).
- :mod:`repro.analysis.report` — plain-text table formatting for benches and
  EXPERIMENTS.md.
"""

from repro.analysis.accuracy import (
    accuracy_score,
    confusion_matrix,
    moving_error_rate,
    per_class_accuracy,
)
from repro.analysis.conductance_maps import (
    ascii_map,
    map_contrast,
    neuron_maps,
    population_selectivity,
)
from repro.analysis.distributions import conductance_histogram, saturation_fractions
from repro.analysis.rasters import ascii_raster, raster_from_monitor, spike_density
from repro.analysis.report import format_table
from repro.analysis.spiketrains import (
    fano_factor,
    isi_cv,
    raster_train_statistics,
    synchrony_index,
)
from repro.analysis.statistics import SeedStudy, bootstrap_ci, summarize
from repro.analysis.visualization import save_conductance_grid, save_raster_image, write_pgm
from repro.analysis.runtime import RuntimeComparison, time_callable

__all__ = [
    "accuracy_score",
    "confusion_matrix",
    "moving_error_rate",
    "per_class_accuracy",
    "ascii_map",
    "map_contrast",
    "neuron_maps",
    "population_selectivity",
    "conductance_histogram",
    "saturation_fractions",
    "ascii_raster",
    "raster_from_monitor",
    "spike_density",
    "format_table",
    "fano_factor",
    "isi_cv",
    "raster_train_statistics",
    "synchrony_index",
    "SeedStudy",
    "bootstrap_ci",
    "summarize",
    "save_conductance_grid",
    "save_raster_image",
    "write_pgm",
    "RuntimeComparison",
    "time_callable",
]
