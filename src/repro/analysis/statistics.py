"""Multi-seed statistics for experiment results.

The WTA winner races make single runs noisy at reduced scale; trend claims
need aggregation.  This module provides:

- :func:`summarize` — mean / std / min / max over a set of per-seed scores;
- :func:`bootstrap_ci` — percentile bootstrap confidence interval for the
  mean;
- :class:`SeedStudy` — run one experiment factory over several seeds and
  tabulate the aggregate, the building block for seed-averaged benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Sequence, Tuple

import numpy as np

from repro.errors import ReproError


@dataclass(frozen=True)
class Summary:
    """Aggregate statistics of one metric across seeds."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    def as_row(self) -> List[float]:
        return [self.mean, self.std, self.minimum, self.maximum]

    def __str__(self) -> str:
        return f"{self.mean:.3f} +/- {self.std:.3f} (n={self.n})"


def summarize(values: Sequence[float]) -> Summary:
    """Mean/std/min/max of per-seed scores (sample std, ddof=1 when n>1)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ReproError("cannot summarize an empty score list")
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    return Summary(
        mean=float(arr.mean()),
        std=std,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        n=int(arr.size),
    )


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile bootstrap CI for the mean of *values*."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ReproError("cannot bootstrap an empty score list")
    if not 0.0 < confidence < 1.0:
        raise ReproError(f"confidence must be in (0, 1), got {confidence}")
    rng = np.random.default_rng(seed)
    means = rng.choice(arr, size=(n_resamples, arr.size), replace=True).mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    return float(np.quantile(means, alpha)), float(np.quantile(means, 1.0 - alpha))


class SeedStudy:
    """Run ``factory(seed) -> score`` over seeds and aggregate per variant."""

    def __init__(self, seeds: Sequence[int]) -> None:
        if not seeds:
            raise ReproError("SeedStudy needs at least one seed")
        self.seeds = list(seeds)
        self._scores: Dict[str, List[float]] = {}

    def run(self, name: str, factory: Callable[[int], float]) -> Summary:
        """Evaluate one variant across all seeds; returns its summary."""
        scores = [float(factory(seed)) for seed in self.seeds]
        self._scores[name] = scores
        return summarize(scores)

    def record(self, name: str, scores: Sequence[float]) -> Summary:
        """Register externally-computed per-seed *scores* for *name*.

        The entry point for parallel runners (e.g. ``ParameterSweep`` with
        ``n_workers``) that evaluate the seeds elsewhere but want the same
        aggregation/reporting; *scores* must be ordered like :attr:`seeds`.
        """
        scores = [float(s) for s in scores]
        if len(scores) != len(self.seeds):
            raise ReproError(
                f"expected {len(self.seeds)} scores (one per seed), got {len(scores)}"
            )
        self._scores[name] = scores
        return summarize(scores)

    def record_partial(self, name: str, scores_by_seed: Mapping[int, float]) -> Summary:
        """Register scores for a subset of the seeds (fault-tolerant sweeps).

        A resilient :class:`~repro.pipeline.sweep.ParameterSweep` may finish
        with some cells permanently failed; the surviving per-seed scores
        still aggregate (clearly marked as partial by ``Summary.n``).  Keys
        must be a non-empty subset of :attr:`seeds`; scores are stored in
        seed order.
        """
        unknown = sorted(set(scores_by_seed) - set(self.seeds))
        if unknown:
            raise ReproError(
                f"record_partial got scores for unknown seeds {unknown}; "
                f"study seeds are {self.seeds}"
            )
        scores = [
            float(scores_by_seed[seed]) for seed in self.seeds if seed in scores_by_seed
        ]
        if not scores:
            raise ReproError(f"record_partial for {name!r} got no scores at all")
        self._scores[name] = scores
        return summarize(scores)

    def scores(self, name: str) -> List[float]:
        if name not in self._scores:
            raise ReproError(f"no variant named {name!r}; ran {sorted(self._scores)}")
        return list(self._scores[name])

    def summary_rows(self) -> List[List[object]]:
        """``[name, mean, std, min, max]`` rows for report tables."""
        return [
            [name] + summarize(scores).as_row() for name, scores in self._scores.items()
        ]

    def difference(self, a: str, b: str) -> Summary:
        """Per-seed paired differences ``a - b`` (same seeds, so paired)."""
        sa, sb = self.scores(a), self.scores(b)
        return summarize([x - y for x, y in zip(sa, sb)])
